"""Performance observability: profiler, bench history, health, ``repro top``.

Covers the acceptance criteria of the continuous-profiling PR:

- :data:`NULL_PROFILER` is a shared no-op and the profiling-disabled hot
  loop allocates nothing from the profiler module;
- profiled runs are byte-identical (answers *and* simulated clock) to
  unprofiled ones across the serial, thread-pool, and sharded backends;
- per-stage profile durations reconcile exactly with the stepper's trace
  spans (same clock endpoints by construction);
- :class:`WallProfiler` samples real stacks into collapsed flamegraph
  lines without signals or trace hooks;
- :meth:`QuantileSketch.merge` is exact while the union fits and keeps
  the reservoir quantile error bound beyond capacity;
- the bench history store round-trips records, detects an injected 2x
  latency regression, passes a genuine baseline, and skips wall metrics
  across hosts while keeping byte-identity flags strict;
- :class:`HealthMonitor` grades utilization OK/DEGRADED/CRITICAL and
  never perturbs the spine (no lazy pool spawn); :class:`StatsExporter`
  writes complete frames ``repro top`` can render;
- the ``profile``/``top``/``bench-history``/``trace --json`` CLI
  commands work end to end.
"""

from __future__ import annotations

import json
import math
import threading
import time
import tracemalloc
from types import SimpleNamespace

import numpy as np
import pytest

from repro import MatchSession, QueryRequest, SessionRegistry
from repro.cli import main as cli_main
from repro.core import HistSimConfig
from repro.data import load_dataset, workload_query
from repro.obs import (
    CRITICAL,
    DEGRADED,
    NULL_PROFILER,
    OK,
    BenchHistory,
    BenchRecord,
    HealthMonitor,
    ProfileSnapshot,
    Profiler,
    QuantileSketch,
    StatsExporter,
    Tracer,
    WallProfiler,
    check_regression,
    metric_kind,
)
from repro.obs import profiler as profiler_module
from repro.obs.bench_history import normalize_bench_serving
from repro.obs.health import _utilization_check
from repro.parallel import ShardedBackend, ThreadPoolBackend

ROWS = 20_000


@pytest.fixture(scope="module")
def flights_table():
    return load_dataset("flights", rows=ROWS, seed=7).table


@pytest.fixture(scope="module")
def flights_query():
    _, query = workload_query("flights-q1")
    return query


def small_config(query) -> HistSimConfig:
    return HistSimConfig(
        k=query.k, epsilon=0.1, delta=0.01, sigma=0.0008,
        stage1_samples=ROWS // 20,
    )


def run_once(table, query, *, backend="serial", profiler=None, tracer=None):
    with MatchSession(
        table, backend=backend, profiler=profiler, tracer=tracer
    ) as session:
        return session.match(
            query, approach="fastmatch", config=small_config(query), seed=3
        )


# ---------------------------------------------------------------- profiler


def test_null_profiler_is_a_shared_noop():
    assert NULL_PROFILER.enabled is False
    assert NULL_PROFILER.fork() is NULL_PROFILER
    # One preallocated stage scope, reused for every call: no per-step
    # allocation on the disabled path.
    assert NULL_PROFILER.stage("stage1") is NULL_PROFILER.stage("stage2")
    with NULL_PROFILER.stage("stage1"):
        NULL_PROFILER.record_kernel("k", 1.0, rows=5)
        NULL_PROFILER.bump("windows")
    snapshot = NULL_PROFILER.snapshot()
    assert snapshot.totals == {} and snapshot.kernels == {}


def test_disabled_profiling_allocates_nothing_from_profiler_module(
    flights_table, flights_query
):
    run_once(flights_table, flights_query)  # warm caches outside the trace
    tracemalloc.start()
    try:
        run_once(flights_table, flights_query)
        snapshot = tracemalloc.take_snapshot()
    finally:
        tracemalloc.stop()
    from_profiler = snapshot.filter_traces(
        [tracemalloc.Filter(True, profiler_module.__file__)]
    )
    assert sum(stat.size for stat in from_profiler.statistics("filename")) == 0


def test_fork_rolls_up_into_parent_with_stage_attribution():
    parent = Profiler()
    child = parent.fork()
    with child.stage("stage2"):
        child.record_kernel(
            "serial.count", 1000.0, rows=64, blocks=2, nbytes=512, bincounts=1
        )
        child.record_kernel("engine.deliver", 9999.0)
    child.bump("windows")

    per_job = child.snapshot()
    assert per_job.stages == {}  # record_stage is the stepper's job
    assert per_job.kernels["stage2"]["serial.count"]["rows"] == 64
    assert per_job.totals["rows_gathered"] == 64
    # engine.* ns is the simulated I/O charge, excluded from kernel time.
    assert per_job.totals["kernel_ns"] == 1000.0
    assert per_job.totals["windows"] == 1

    aggregate = parent.snapshot()
    assert aggregate.totals["rows_gathered"] == 64
    assert aggregate.totals["windows"] == 1


def test_profiled_runs_are_byte_identical_across_backends(
    flights_table, flights_query
):
    baseline = run_once(flights_table, flights_query)
    assert baseline.report.profile is None  # no profiler, no payload

    backends = [
        "serial",
        ThreadPoolBackend(2, min_shard_rows=0),
        ShardedBackend(2, min_shard_rows=0),
    ]
    for backend in backends:
        profiler = Profiler()
        try:
            outcome = run_once(
                flights_table, flights_query, backend=backend, profiler=profiler
            )
        finally:
            if not isinstance(backend, str):
                backend.close()
        report = outcome.report
        np.testing.assert_array_equal(
            report.result.matching, baseline.report.result.matching
        )
        np.testing.assert_allclose(
            report.result.distances, baseline.report.result.distances
        )
        # Same simulated clock too: profiling charged nothing.
        assert report.elapsed_ns == baseline.report.elapsed_ns

        profile = report.profile
        assert profile is not None
        assert profile["totals"]["rows_gathered"] > 0
        assert profile["totals"]["blocks_touched"] > 0
        assert profile["totals"]["bytes_moved"] > 0
        assert profile["totals"]["bincount_calls"] >= 1
        assert {"stage1", "stage2"} <= set(profile["stages"])
        # The rendered table covers every recorded kernel row.
        table_text = ProfileSnapshot(**profile).format_table()
        for stage, kernels in profile["kernels"].items():
            for kernel in kernels:
                assert kernel in table_text


def test_stage_durations_reconcile_with_trace_spans(flights_table, flights_query):
    profiler = Profiler()
    tracer = Tracer()
    outcome = run_once(
        flights_table, flights_query, profiler=profiler, tracer=tracer
    )
    stages = outcome.report.profile["stages"]

    span_ns: dict[str, float] = {}
    for span in tracer.spans:
        if span.name.startswith("stepper."):
            stage = span.name[len("stepper."):]
            span_ns[stage] = span_ns.get(stage, 0.0) + span.duration_ns
    assert span_ns  # tracing was on
    for stage, stats in stages.items():
        assert stats["ns"] == pytest.approx(span_ns[stage], abs=1.0)


def test_wall_profiler_collapses_stacks():
    stop = threading.Event()

    def busy():
        while not stop.is_set():
            math.sqrt(12345.6789)

    worker = threading.Thread(target=busy, name="busy-loop", daemon=True)
    worker.start()
    try:
        with WallProfiler(interval_s=0.001) as wall:
            time.sleep(0.08)
    finally:
        stop.set()
        worker.join()
    assert wall.samples > 0
    stacks = wall.collapsed()
    assert stacks and all(count >= 1 for count in stacks.values())
    assert any(";" in stack for stack in stacks)  # real multi-frame stacks
    lines = wall.format_collapsed(top=5).splitlines()
    assert 0 < len(lines) <= 5
    for line in lines:
        stack, _, count = line.rpartition(" ")
        assert stack and int(count) >= 1


# ------------------------------------------------------------ sketch merge


def test_sketch_merge_exact_regime_matches_direct_observation():
    left, right, direct = (
        QuantileSketch(64), QuantileSketch(64), QuantileSketch(128)
    )
    values_left = [float(v) for v in range(10)]
    values_right = [float(v) for v in range(100, 140)]
    for v in values_left:
        left.observe(v)
        direct.observe(v)
    for v in values_right:
        right.observe(v)
        direct.observe(v)
    merged = QuantileSketch(128)
    merged.merge(left).merge(right)
    assert merged.count == direct.count
    assert merged.total == direct.total
    assert merged.minimum == direct.minimum
    assert merged.maximum == direct.maximum
    for q in (1, 25, 50, 75, 99):
        assert merged.percentile(q) == direct.percentile(q)
    # The sources were read, never mutated.
    assert left.count == len(values_left)
    assert right.count == len(values_right)


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_sketch_merge_keeps_reservoir_quantile_error_bound(seed):
    # Property: after merging two over-capacity sketches of very different
    # streams, each estimated quantile's *rank* error stays within the
    # documented ~sqrt(q(1-q)/capacity) reservoir bound (x4 margin).
    capacity = 512
    rng = np.random.default_rng(seed)
    stream_a = rng.exponential(10.0, size=3000)
    stream_b = 100.0 + rng.normal(0.0, 5.0, size=5000)
    sketch_a = QuantileSketch(capacity, seed=seed)
    sketch_b = QuantileSketch(capacity, seed=seed + 1)
    for v in stream_a:
        sketch_a.observe(v)
    for v in stream_b:
        sketch_b.observe(v)
    merged = sketch_a.merge(sketch_b)

    union = np.sort(np.concatenate([stream_a, stream_b]))
    assert merged.count == union.size
    assert merged.total == pytest.approx(union.sum())
    for q in (0.1, 0.25, 0.5, 0.75, 0.9):
        estimate = merged.percentile(100 * q)
        rank = np.searchsorted(union, estimate) / union.size
        bound = 4.0 * math.sqrt(q * (1 - q) / capacity)
        assert abs(rank - q) <= bound, (
            f"q={q}: rank {rank:.4f} off by more than {bound:.4f}"
        )


# ------------------------------------------------------------ bench history


def test_metric_kind_contract():
    assert metric_kind("edf_p99_latency_ms") == "lower"
    assert metric_kind("wall_taxi_serial_seconds") == "lower"
    assert metric_kind("edf_deadline_hit_rate") == "higher"
    assert metric_kind("wall_taxi_sharded_2w_speedup") == "higher"
    assert metric_kind("counts_identical") == "strict"
    assert metric_kind("completed_count") == "info"
    assert metric_kind("cpu_count") == "info"


def record(metrics, *, host=None, config=None) -> BenchRecord:
    return BenchRecord(
        bench="bench_serving",
        config=config or {"rows": 1000},
        metrics=metrics,
        **({"host": host} if host is not None else {}),
    )


def test_history_append_and_roundtrip(tmp_path):
    history = BenchHistory(tmp_path / "history")
    first = record({"edf_p99_latency_ms": 10.0})
    path = history.append(first)
    history.append(record({"edf_p99_latency_ms": 11.0}))
    assert path == history.path_for("bench_serving")
    loaded = history.records("bench_serving")
    assert [r.metrics["edf_p99_latency_ms"] for r in loaded] == [10.0, 11.0]
    assert loaded[0].config_hash == first.config_hash
    assert history.benches() == ["bench_serving"]

    path.write_text(path.read_text() + '{"schema": 99}\n')
    with pytest.raises(ValueError, match=r":3: "):
        history.records("bench_serving")


def test_check_detects_injected_2x_latency_regression():
    prior = [record({"edf_p99_latency_ms": 10.0 + i * 0.1}) for i in range(5)]
    good = check_regression(record({"edf_p99_latency_ms": 10.3}), prior)
    assert good.ok and good.checked == 1

    regressed = check_regression(record({"edf_p99_latency_ms": 20.4}), prior)
    assert not regressed.ok
    (finding,) = regressed.findings
    assert finding.metric == "edf_p99_latency_ms"
    assert finding.ratio == pytest.approx(2.0, rel=0.05)
    assert "edf_p99_latency_ms" in regressed.describe()


def test_check_gates_rates_and_strict_identity():
    prior = [
        record({"edf_deadline_hit_rate": 0.9, "counts_identical": 1.0})
        for _ in range(3)
    ]
    ok = check_regression(
        record({"edf_deadline_hit_rate": 0.85, "counts_identical": 1.0}), prior
    )
    assert ok.ok
    rate_drop = check_regression(
        record({"edf_deadline_hit_rate": 0.5, "counts_identical": 1.0}), prior
    )
    assert not rate_drop.ok
    # Any identity drop fails regardless of tolerance.
    broken = check_regression(
        record({"edf_deadline_hit_rate": 0.9, "counts_identical": 0.0}),
        prior, tolerance=10.0,
    )
    assert not broken.ok


def test_check_is_vacuous_below_min_baseline_and_respects_config_hash():
    prior = [record({"edf_p99_latency_ms": 10.0})]
    young = check_regression(record({"edf_p99_latency_ms": 99.0}), prior)
    assert young.ok and young.baseline_records < 2

    other_config = [
        record({"edf_p99_latency_ms": 10.0}, config={"rows": 2000})
        for _ in range(5)
    ]
    unmatched = check_regression(
        record({"edf_p99_latency_ms": 99.0}), other_config
    )
    assert unmatched.ok and unmatched.baseline_records == 0


def test_wall_metrics_skip_cross_host_but_sim_metrics_gate():
    this_host = {"platform": "linux", "cpu_count": 4}
    other_host = {"platform": "linux", "cpu_count": 64}
    prior = [
        record(
            {"wall_pass_seconds": 1.0, "edf_p99_latency_ms": 10.0},
            host=other_host,
        )
        for _ in range(3)
    ]
    report = check_regression(
        record(
            {"wall_pass_seconds": 50.0, "edf_p99_latency_ms": 10.0},
            host=this_host,
        ),
        prior, match_host=False,
    )
    assert report.ok and report.skipped_wall == 1 and report.checked == 1

    same_host = [
        record({"wall_pass_seconds": 1.0}, host=this_host) for _ in range(3)
    ]
    gated = check_regression(
        record({"wall_pass_seconds": 50.0}, host=this_host),
        same_host, match_host=False,
    )
    assert not gated.ok


def test_normalize_bench_serving_flattens_policies():
    data = {
        "rows": 60_000, "requests": 64, "overload": 1.25, "max_queue": 8,
        "max_step_rows": 2000, "backend": "serial", "max_concurrent_steps": 4,
        "mean_service_ms": 3.5,
        "policies": [{
            "policy": "edf-f", "p50_latency_ms": 2.0, "p99_latency_ms": 9.0,
            "deadline_hit_rate": 0.75, "completed": 40,
        }],
    }
    rec = normalize_bench_serving(data, note="tiny")
    assert rec.metrics["edf_f_p99_latency_ms"] == 9.0
    assert rec.metrics["edf_f_deadline_hit_rate"] == 0.75
    assert metric_kind("edf_f_completed_count") == "info"
    assert rec.note == "tiny"
    # Round-trips through the JSONL encoding.
    again = BenchRecord.from_json(rec.to_json())
    assert again.metrics == rec.metrics and again.config_hash == rec.config_hash


# ----------------------------------------------------------------- health


def test_utilization_thresholds():
    assert _utilization_check("queue", 3.0, None, "x").status == OK
    assert _utilization_check("queue", 3.0, 8.0, "x").status == OK
    assert _utilization_check("queue", 7.0, 8.0, "x").status == DEGRADED
    assert _utilization_check("queue", 8.0, 8.0, "x").status == CRITICAL
    assert _utilization_check("queue", 9.0, 8.0, "x").status == CRITICAL


def test_health_monitor_grades_a_fake_door():
    door = SimpleNamespace(
        admission=SimpleNamespace(in_flight=8, max_queue=8),
        engine=SimpleNamespace(in_flight=1, pending=0),
        metrics=None,
        max_concurrent_steps=4,
        service=None,
    )
    report = HealthMonitor(door).check()
    assert report.status == CRITICAL
    assert any("in flight" in reason for reason in report.reasons)
    by_name = {c.name: c for c in report.checks}
    assert by_name["queue"].status == CRITICAL
    assert by_name["steps"].status == OK


def test_health_monitor_never_spawns_the_lazy_worker_pool(flights_table):
    with SessionRegistry(backend="sharded", workers=2) as registry:
        registry.add_dataset("flights", flights_table)
        door = registry.serve(policy="edf")
        try:
            report = HealthMonitor(door).check()
        finally:
            door.shutdown()
        assert report.status == OK
        # The probe must read the pool slot, not the spawning property.
        assert registry.backend._pool is None
        names = [c.name for c in report.checks]
        assert "workers" not in names  # nothing spawned -> nothing to grade
        assert "clock_skew" in names


def test_stats_exporter_frames_and_calibration(
    tmp_path, flights_table, flights_query
):
    tracer = Tracer()
    registry = SessionRegistry(tracer=tracer)
    registry.add_dataset("flights", flights_table)
    door = registry.serve(policy="edf")
    request = QueryRequest(
        flights_query, approach="fastmatch", config=small_config(flights_query),
        seed=3, dataset="flights", name="q",
    )
    try:
        outcomes = door.replay([(0.0, request)])
    finally:
        door.shutdown()
    assert outcomes[0].status == "completed"

    # Per-tenant calibration (observed vs Eq. 1-estimated stage cost) is in
    # the snapshot, and sits near 1.0: the simulated clock charges exactly
    # the modeled cost, plus stage overheads beyond the delivered slice.
    snap = door.metrics.snapshot()
    ratio = snap.per_tenant["flights"]["calibration_ratio"]
    assert 0.5 < ratio < 3.0
    assert any(
        "calibration_ratio" in stage for stage in snap.per_stage.values()
    )

    exporter = StatsExporter(door, tmp_path / "stats.json", interval_s=0.01)
    exporter.write_frame()
    frame = json.loads((tmp_path / "stats.json").read_text())
    assert frame["serving"]["per_tenant"]["flights"]["calibration_ratio"] == ratio
    assert frame["health"]["status"] == OK
    assert frame["queue"]["in_flight"] == 0
    assert frame["serving"]["all_tenants"]["requests"] == 1

    with exporter:
        time.sleep(0.05)
    assert exporter.frames >= 2
    registry.close()


# -------------------------------------------------------------------- CLI


def test_cli_profile_json(capsys):
    code = cli_main(
        ["profile", "flights-q1", "--rows", str(ROWS), "--json"]
    )
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["query"] == "flights-q1"
    profile = payload["profile"]
    assert profile["totals"]["rows_gathered"] > 0
    # Trace spans and profile stages agree stage by stage.
    for stage, stats in profile["stages"].items():
        assert stats["ns"] == pytest.approx(
            payload["trace_stage_ns"][stage], abs=1.0
        )


def test_cli_profile_table_and_wall(capsys):
    code = cli_main([
        "profile", "flights-q1", "--rows", str(ROWS),
        "--wall", "--wall-interval-ms", "2", "--top", "5",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "serial.count" in out
    assert "drift ns" in out
    assert "wall stacks" in out


def test_cli_top_once_renders_a_frame(tmp_path, capsys):
    frame = {
        "frame": 3,
        "queue": {"in_flight": 2, "max_queue": 8, "pending": 1,
                  "stepping": 1, "step_slots": 4},
        "shm": {"bytes": 2 * 2**20, "segments": 3},
        "serving": {
            "requests": 10, "completed": 9, "partial": 1, "missed": 0,
            "shed": 0, "p50_latency_ms": 2.0, "p95_latency_ms": 4.0,
            "p99_latency_ms": 5.0, "deadline_hit_rate": 0.9,
            "per_tenant": {"flights": {
                "completed": 9, "p50_latency_ms": 2.0,
                "calibration_ratio": 1.05,
            }},
            "all_tenants": {"requests": 10, "p50_latency_ms": 2.0,
                            "p99_latency_ms": 5.0},
        },
        "health": {"status": "degraded", "reasons": ["queue hot"]},
    }
    stats = tmp_path / "stats.json"
    stats.write_text(json.dumps(frame))
    assert cli_main(["top", str(stats), "--once"]) == 0
    out = capsys.readouterr().out
    assert "2 in flight" in out
    assert "calibration=1.050" in out
    assert "DEGRADED" in out
    assert "queue hot" in out

    missing = cli_main(["top", str(tmp_path / "nope.json"), "--once"])
    assert missing == 1


def test_cli_serve_stats_out_then_top(tmp_path, capsys):
    stats = tmp_path / "stats.json"
    trace = tmp_path / "trace.jsonl"
    code = cli_main([
        "--rows", str(ROWS), "serve", "--queries", "flights-q1",
        "--stats-out", str(stats), "--stats-interval", "0.05",
        "--trace-out", str(trace),
    ])
    assert code == 0
    serve_out = capsys.readouterr().out
    assert "stats      :" in serve_out
    assert stats.exists()

    assert cli_main(["top", str(stats), "--once"]) == 0
    top_out = capsys.readouterr().out
    assert "health     : OK" in top_out
    assert "completed" in top_out

    assert cli_main(["trace", "summarize", str(trace), "--json"]) == 0
    summary = json.loads(capsys.readouterr().out)
    assert summary["requests"] == 1
    assert "stage2" in summary["stages"]


def test_cli_bench_history_record_check_show(tmp_path, capsys):
    results = tmp_path / "results"
    results.mkdir()
    data = {
        "rows": 60_000, "requests": 64, "overload": 1.25, "max_queue": 8,
        "max_step_rows": 2000, "backend": "serial", "max_concurrent_steps": 4,
        "mean_service_ms": 3.5,
        "policies": [{
            "policy": "edf", "p50_latency_ms": 2.0, "p99_latency_ms": 9.0,
            "deadline_hit_rate": 0.75, "completed": 40,
        }],
    }
    (results / "bench_serving.json").write_text(json.dumps(data))
    base = ["bench-history", "--results-dir", str(results)]

    for _ in range(2):
        assert cli_main(base + ["record", "--note", "seed"]) == 0
    capsys.readouterr()

    assert cli_main(base + ["check"]) == 0
    assert "OK" in capsys.readouterr().out

    # Inject a 2x p99 regression, record it, and the gate must trip.
    data["policies"][0]["p99_latency_ms"] = 18.0
    (results / "bench_serving.json").write_text(json.dumps(data))
    assert cli_main(base + ["record"]) == 0
    capsys.readouterr()
    assert cli_main(base + ["check"]) == 1
    assert "edf_p99_latency_ms" in capsys.readouterr().out

    # Checking against a committed genuine-baseline file passes again.
    history_file = results / "history" / "bench_serving.jsonl"
    baseline = tmp_path / "baseline.jsonl"
    baseline.write_text(
        "".join(line + "\n" for line in
                history_file.read_text().splitlines()[:2])
    )
    data["policies"][0]["p99_latency_ms"] = 9.1
    (results / "bench_serving.json").write_text(json.dumps(data))
    assert cli_main(base + ["record"]) == 0
    assert cli_main(base + ["check", "--baseline", str(baseline)]) == 0
    capsys.readouterr()

    assert cli_main(base + ["show", "--last", "4"]) == 0
    shown = capsys.readouterr().out
    assert "bench_serving: 4 records" in shown
    assert "(seed)" in shown
