"""Tests for the async serving front door (repro/serving/).

Acceptance properties:

- a query served through the front door (any policy, no deadline) produces
  byte-identical results to a standalone ``match_histograms`` run;
- deadlines finalize early with ε-relaxed partial answers reporting their
  actually-achieved guarantee, or typed ``DeadlineMiss`` errors;
- admission control sheds beyond the queue bound with a typed rejection;
- policies shape order/latency only (EDF serves urgent first, cost serves
  cheap first, nothing starves);
- shutdown is safe mid-flight and idempotent with session close.
"""

import numpy as np
import pytest

from repro import FrontDoor, MatchSession, QueryRequest, match_histograms
from repro.core import HistSimConfig
from repro.core.histsim import HistSimStepper
from repro.core.sampler import ArraySampler
from repro.core.target import TargetSpec
from repro.query import HistogramQuery
from repro.serving import (
    POLICIES,
    AdmissionController,
    AdmissionRejected,
    DeadlineMiss,
    ServingError,
    ServingScheduler,
)
from repro.storage import CategoricalAttribute, ColumnTable, Schema
from repro.system import SimulatedClock


@pytest.fixture(scope="module")
def table():
    rng = np.random.default_rng(101)
    n = 60_000
    candidates, groups = 15, 6
    z = rng.integers(0, candidates, size=n)
    x = np.empty(n, dtype=np.int64)
    for c in range(candidates):
        mask = z == c
        base = np.full(groups, 1.0 / groups)
        if c >= 3:
            base[c % groups] += 0.7
            base /= base.sum()
        x[mask] = rng.choice(groups, size=int(mask.sum()), p=base)
    schema = Schema(
        (
            CategoricalAttribute("product", tuple(f"p{i}" for i in range(candidates))),
            CategoricalAttribute("age", tuple(f"a{i}" for i in range(groups))),
        )
    )
    return ColumnTable(schema, {"product": z, "age": x})


EPS, DELTA = 0.15, 0.05


def make_request(k=3, seed=3, name="uniform", **overrides):
    query = HistogramQuery(
        "product", "age", target=TargetSpec(kind="closest_to_uniform"), k=k,
        name=name,
    )
    config = HistSimConfig(k=k, epsilon=EPS, delta=DELTA, sigma=0.0)
    return QueryRequest(query, config=config, seed=seed, name=name, **overrides)


class FakeJob:
    """Deterministic job: charges ``cost_ns`` per step, ``work`` steps total."""

    def __init__(self, name, work, clock, cost_ns=10.0, log=None, remaining=None):
        self.name = name
        self._work = work
        self._clock = clock
        self._cost = cost_ns
        self._log = log if log is not None else []
        self._remaining = remaining
        self.partials = 0

    @property
    def done(self):
        return self._work == 0

    def step(self):
        self._log.append(self.name)
        self._work -= 1
        self._clock.charge_serial(io=self._cost)

    def estimated_remaining_rows(self):
        if self._remaining is not None:
            return self._remaining
        return self._work * self._cost

    def finish(self, service_ns):
        class _Report:
            elapsed_ns = service_ns
        return _Report()

    def finish_partial(self, service_ns):
        self.partials += 1
        class _Report:
            elapsed_ns = service_ns
            partial = True
        return _Report()


class TestFrontDoorEquivalence:
    @pytest.mark.parametrize("policy", POLICIES)
    def test_front_door_matches_standalone(self, table, policy):
        """Acceptance: any policy, no deadline ⇒ byte-identical to standalone."""
        standalone = match_histograms(
            table, "product", "age", k=3, epsilon=EPS, delta=DELTA, sigma=0.0,
            seed=3,
        )
        session = MatchSession(table)
        door = session.serve(policy=policy)
        outcomes = door.replay(
            [(0.0, make_request()), (0.0, make_request(k=2, name="second"))]
        )
        door.shutdown()
        first = outcomes[0]
        assert first.status == "completed"
        assert first.report.result.matching == standalone.result.matching
        assert np.array_equal(
            first.report.result.histograms, standalone.result.histograms
        )
        assert np.array_equal(
            first.report.result.distances, standalone.result.distances
        )
        assert first.report.result.stats == standalone.result.stats
        assert first.report.result.rounds == standalone.result.rounds
        assert first.report.elapsed_ns == pytest.approx(standalone.elapsed_ns)

    def test_threaded_submit_while_running(self, table):
        session = MatchSession(table)
        standalone = match_histograms(
            table, "product", "age", k=3, epsilon=EPS, delta=DELTA, sigma=0.0,
            seed=3,
        )
        with FrontDoor(session, policy="rr") as door:
            door.start()
            handles = [door.submit(make_request()), door.submit(make_request(k=2, name="b"))]
            reports = [h.result(timeout=60) for h in handles]
        assert reports[0].result.matching == standalone.result.matching
        assert session.closed  # shutdown closed the session underneath


class TestDeadlines:
    def test_deadline_partial_reports_achieved_epsilon(self, table):
        session = MatchSession(table)
        door = session.serve(policy="edf")
        # A deadline far too tight to finish, generous enough for stage 1.
        outcomes = door.replay(
            [(0.0, make_request(deadline_ns=5e4, max_step_rows=2000))]
        )
        door.shutdown()
        (outcome,) = outcomes
        assert outcome.status == "partial"
        assert outcome.report is not None and outcome.report.partial
        assert outcome.report.audit is None  # partials claim no full guarantee
        assert outcome.report.achieved_epsilon > 0
        assert outcome.report.achieved_delta == DELTA
        assert len(outcome.report.result.matching) > 0
        assert not outcome.deadline_hit
        assert door.metrics.snapshot().deadline_hit_rate == 0.0

    def test_deadline_miss_is_typed(self, table):
        session = MatchSession(table)
        door = session.serve()
        outcomes = door.replay(
            [(0.0, make_request(deadline_ns=5e4, max_step_rows=2000,
                                on_deadline="miss"))]
        )
        door.shutdown()
        (outcome,) = outcomes
        assert outcome.status == "miss"
        assert outcome.report is None
        assert isinstance(outcome.error, DeadlineMiss)

    def test_completion_exactly_at_deadline_is_a_hit(self):
        """Done beats expired when a job finishes on the deadline boundary."""
        clock = SimulatedClock()
        core = ServingScheduler(clock, policy="fifo")
        job = FakeJob("exact", work=3, clock=clock, cost_ns=10.0)
        core.submit(job, deadline_ns=30.0)  # finishes at t=30 exactly
        (outcome,) = core.run_until_idle()
        assert outcome.status == "completed"
        assert outcome.finished_ns == 30.0
        assert outcome.deadline_hit

    def test_expiry_exactly_at_step_boundary(self):
        """A deadline landing exactly on a step boundary expires the job
        before it receives another slice (partial, not a further step)."""
        clock = SimulatedClock()
        core = ServingScheduler(clock, policy="fifo")
        job = FakeJob("boundary", work=5, clock=clock, cost_ns=10.0)
        core.submit(job, deadline_ns=20.0)  # two steps fit exactly
        (outcome,) = core.run_until_idle()
        assert outcome.status == "partial"
        assert outcome.steps == 2
        assert outcome.finished_ns == 20.0
        assert job.partials == 1

    def test_waiting_job_expires_from_neighbour_service(self):
        """One job's service pushes a *queued* job past its deadline."""
        clock = SimulatedClock()
        core = ServingScheduler(clock, policy="fifo")
        heavy = FakeJob("heavy", work=10, clock=clock, cost_ns=10.0)
        light = FakeJob("light", work=1, clock=clock, cost_ns=10.0)
        core.submit(heavy)
        core.submit(light, deadline_ns=50.0)
        outcomes = {o.name: o for o in core.run_until_idle()}
        assert outcomes["light"].status == "partial"
        assert outcomes["light"].steps == 0  # FIFO never granted it a slice
        assert outcomes["light"].finished_ns == 50.0
        assert outcomes["heavy"].status == "completed"


class TestAdmission:
    def test_rejection_under_full_queue(self, table):
        session = MatchSession(table)
        door = session.serve(policy="fifo", max_queue=2)
        outcomes = door.replay(
            [(0.0, make_request(name=f"r{i}")) for i in range(4)]
        )
        door.shutdown()
        statuses = [o.status for o in outcomes]
        assert statuses == ["completed", "completed", "shed", "shed"]
        shed = outcomes[2]
        assert isinstance(shed.error, AdmissionRejected)
        assert shed.steps == 0
        snap = door.metrics.snapshot()
        assert snap.shed == 2 and snap.completed == 2 and snap.requests == 4

    def test_capacity_returns_after_completion(self, table):
        """Open-loop: later arrivals are admitted once earlier work drains."""
        session = MatchSession(table)
        door = session.serve(policy="fifo", max_queue=1)
        outcomes = door.replay(
            [
                (0.0, make_request(name="first")),
                (0.0, make_request(name="shed-me")),
                (1e9, make_request(name="later", seed=4)),
            ]
        )
        door.shutdown()
        assert [o.status for o in outcomes] == ["completed", "shed", "completed"]

    def test_threaded_submit_sheds_synchronously(self, table):
        session = MatchSession(table)
        door = FrontDoor(session, policy="fifo", max_queue=1)  # not started
        door.submit(make_request(name="queued"))
        with pytest.raises(AdmissionRejected):
            door.submit(make_request(name="overflow"))
        assert door.pump()[0].status == "completed"
        # Capacity came back: the next submit is admitted.
        door.submit(make_request(name="after", seed=4))
        door.shutdown()

    def test_controller_bounds(self):
        with pytest.raises(ValueError, match="max_queue"):
            AdmissionController(0)
        controller = AdmissionController(1)
        assert controller.try_admit() and not controller.try_admit()
        controller.release()
        assert controller.try_admit()
        assert controller.describe()["shed"] == 1


class TestPolicies:
    def test_edf_serves_urgent_first(self):
        clock = SimulatedClock()
        core = ServingScheduler(clock, policy="edf")
        log = []
        core.submit(FakeJob("loose", 2, clock, log=log), deadline_ns=1000.0)
        core.submit(FakeJob("urgent", 2, clock, log=log), deadline_ns=100.0)
        core.submit(FakeJob("none", 2, clock, log=log))
        outcomes = core.run_until_idle()
        assert log == ["urgent", "urgent", "loose", "loose", "none", "none"]
        assert all(o.status == "completed" for o in outcomes)

    def test_edf_no_starvation_under_contention(self):
        """Deadline-free jobs still complete once deadline work drains."""
        clock = SimulatedClock()
        core = ServingScheduler(clock, policy="edf")
        jobs = [FakeJob(f"d{i}", 3, clock) for i in range(4)]
        for i, job in enumerate(jobs):
            core.submit(job, deadline_ns=1e6 * (i + 1))
        starving = FakeJob("no-deadline", 3, clock)
        core.submit(starving)
        outcomes = core.run_until_idle()
        assert len(outcomes) == 5
        assert all(o.status == "completed" for o in outcomes)
        assert starving.done

    def test_cost_policy_shortest_first(self):
        clock = SimulatedClock()
        core = ServingScheduler(clock, policy="cost")
        log = []
        core.submit(FakeJob("big", 3, clock, log=log))
        core.submit(FakeJob("small", 1, clock, log=log))
        core.run_until_idle()
        assert log == ["small", "big", "big", "big"]

    def test_fifo_runs_to_completion_in_arrival_order(self):
        clock = SimulatedClock()
        core = ServingScheduler(clock, policy="fifo")
        log = []
        core.submit(FakeJob("a", 2, clock, log=log))
        core.submit(FakeJob("b", 2, clock, log=log))
        core.run_until_idle()
        assert log == ["a", "a", "b", "b"]

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="policy"):
            ServingScheduler(SimulatedClock(), policy="magic")


class TestShutdown:
    def test_mid_flight_shutdown_cancels_and_is_idempotent(self, table):
        session = MatchSession(table)
        door = FrontDoor(session, policy="rr")
        handle = door.submit(make_request())
        door.shutdown(drain=False)
        with pytest.raises(ServingError):
            handle.result()
        assert handle.outcome().status == "cancelled"
        # Idempotent front-door shutdown over idempotent session close.
        door.shutdown()
        session.close()
        assert session.closed
        with pytest.raises(ServingError):
            door.submit(make_request())

    def test_session_rejects_work_after_close(self, table):
        session = MatchSession(table)
        session.close()
        session.close()  # double close is a no-op
        with pytest.raises(RuntimeError, match="closed"):
            session.submit(make_request().query)

    def test_drain_shutdown_serves_pending(self, table):
        session = MatchSession(table)
        door = FrontDoor(session, policy="fifo")
        handle = door.submit(make_request())
        door.shutdown(drain=True)
        assert handle.result().result.matching  # served before closing


class TestReplay:
    def test_open_loop_idles_clock_to_next_arrival(self, table):
        session = MatchSession(table)
        door = session.serve(policy="edf")
        outcomes = door.replay(
            [
                (0.0, make_request(name="a")),
                (2e9, make_request(name="b", seed=4)),
            ]
        )
        door.shutdown()
        a, b = outcomes
        assert a.submitted_ns == 0.0 and b.submitted_ns == 2e9
        assert b.finished_ns >= 2e9
        assert session.clock.snapshot().get("idle", 0.0) > 0
        # Latency is measured open-loop, from arrival.
        assert b.latency_ns == b.finished_ns - 2e9

    def test_replay_excludes_threaded_mode(self, table):
        session = MatchSession(table)
        door = FrontDoor(session).start()
        with pytest.raises(ServingError, match="replay"):
            door.replay([(0.0, make_request())])
        door.shutdown()

    def test_replay_after_plain_submit_serves_both(self, table):
        """A request submitted before the replay is served during it (its
        handle resolves) without corrupting the trace's outcome list."""
        session = MatchSession(table)
        door = FrontDoor(session, policy="fifo")
        handle = door.submit(make_request(name="pre-submitted"))
        outcomes = door.replay([(0.0, make_request(name="traced", seed=4))])
        door.shutdown()
        assert [o.name for o in outcomes] == ["traced"]
        assert handle.done and handle.outcome().status == "completed"


class TestSchedulerThreadFailure:
    def test_failing_job_resolves_all_handles(self, table):
        """A job whose step() raises must not strand other handles: every
        unresolved request is cancelled with the failure as its error."""

        class ExplodingSession:
            def __init__(self, session):
                self._session = session
                self.clock = session.clock
                self.backend = session.backend

            def job_for_request(self, request, default_max_step_rows=None):
                class _Boom:
                    name = "boom"
                    done = False

                    def step(self):
                        raise RuntimeError("worker died")

                return _Boom()

            def close(self):
                self._session.close()

        door = FrontDoor(ExplodingSession(MatchSession(table)), policy="fifo")
        door.start()
        handle = door.submit(make_request(name="doomed"))
        outcome = handle.outcome(timeout=30)  # must not hang
        assert outcome.status == "cancelled"
        with pytest.raises(ServingError, match="worker died"):
            handle.result()
        # The door is dead but shutdown stays safe and idempotent.
        door.shutdown()

    def test_shutdown_timeout_leaves_session_open(self, table):
        """An expired shutdown timeout must not close the backend under the
        still-running scheduler thread; a later shutdown finishes the job."""
        import threading

        release = threading.Event()

        class SlowSession:
            def __init__(self, session):
                self._session = session
                self.clock = session.clock
                self.backend = session.backend

            def job_for_request(self, request, default_max_step_rows=None):
                clock = self.clock

                class _Slow:
                    name = "slow"
                    done = False

                    def step(self):
                        release.wait(5.0)
                        self.done = True
                        clock.charge_serial(io=1.0)

                    def finish(self, service_ns):
                        class _Report:
                            elapsed_ns = service_ns
                        return _Report()

                return _Slow()

            def close(self):
                self._session.close()

        inner = MatchSession(table)
        door = FrontDoor(SlowSession(inner), policy="fifo")
        door.start()
        handle = door.submit(make_request(name="slow"))
        assert door.shutdown(drain=True, timeout=0.05) is False
        assert not inner.closed  # backend still alive under the thread
        release.set()
        assert door.shutdown(drain=True, timeout=30) is True
        assert inner.closed
        assert handle.outcome(timeout=1).status == "completed"


class TestStepperServingHooks:
    def make_stepper(self, seed=0, **cfg):
        rng = np.random.default_rng(seed)
        n = 30_000
        z = rng.integers(0, 10, n)
        x = rng.integers(0, 5, n)
        for c in range(3, 10):
            x[z == c] = np.where(rng.random((z == c).sum()) < 0.6, c % 5, x[z == c])
        sampler = ArraySampler(z, x, 10, 5, np.random.default_rng(seed + 1))
        config = HistSimConfig(
            k=3, epsilon=0.2, delta=0.05, sigma=0.0, stage1_samples=2000, **cfg
        )
        return HistSimStepper(sampler, np.ones(5), config, max_step_rows=1500)

    def test_achieved_epsilon_tightens_with_samples(self):
        stepper = self.make_stepper()
        stepper.step()
        early = stepper.achieved_epsilon()
        while not stepper.done:
            stepper.step()
        final = stepper.achieved_epsilon()
        assert final <= early
        assert final <= 0.2  # a completed run achieves its configured ε

    def test_partial_result_before_any_step_is_empty(self):
        stepper = self.make_stepper()
        partial = stepper.partial_result()
        assert partial.matching == ()
        assert stepper.achieved_epsilon() == float("inf")

    def test_partial_result_is_result_when_done(self):
        stepper = self.make_stepper()
        result = stepper.run_to_completion()
        assert stepper.partial_result() is result

    def test_partial_mid_run_tracks_current_topk(self):
        stepper = self.make_stepper()
        stepper.step()
        partial = stepper.partial_result()
        assert 0 < len(partial.matching) <= 3
        assert partial.stats.stage1_samples > 0
        assert partial.histograms.shape[0] == len(partial.matching)

    def test_estimated_remaining_rows_decreases(self):
        stepper = self.make_stepper()
        estimates = [stepper.estimated_remaining_rows()]
        while not stepper.done:
            stepper.step()
            estimates.append(stepper.estimated_remaining_rows())
        assert estimates[-1] == 0.0
        assert estimates[0] > 0
