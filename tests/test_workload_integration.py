"""Cross-module integration: every Table 3 workload, end to end, small scale.

Runs the full pipeline (dataset build -> shuffle/layout -> bitmap index ->
target resolution -> FastMatch -> guarantee audit) for all nine queries at
reduced row counts, checking invariants that must hold at any scale.
"""

import numpy as np
import pytest

from repro.core import HistSimConfig, true_top_k
from repro.data import QUERY_NAMES, prepare_workload
from repro.system import run_approach

ROWS = {"flights": 120_000, "taxi": 400_000, "police": 150_000}


def rows_for(query_name: str) -> int:
    return ROWS[query_name.split("-")[0]]


@pytest.mark.parametrize("query_name", QUERY_NAMES)
class TestEveryWorkload:
    def test_fastmatch_guarantees_and_accounting(self, query_name):
        prepared = prepare_workload(query_name, rows=rows_for(query_name), seed=7)
        config = HistSimConfig(
            k=prepared.query.k, epsilon=0.2, delta=0.05, sigma=0.0008,
            stage1_samples=20_000,
        )
        report = run_approach(prepared, "fastmatch", config, seed=5)

        # Guarantees hold against exact ground truth.
        assert report.audit is not None and report.audit.ok, report.audit

        # Output size: k, unless fewer candidates survive pruning.
        assert 0 < report.result.k <= config.k

        # Accounting invariants.
        counters = report.counters
        assert counters["rows_delivered"] <= prepared.shuffled.num_rows
        assert counters["blocks_read"] <= prepared.shuffled.num_blocks
        assert report.elapsed_ns > 0
        assert abs(
            sum(v for k, v in report.breakdown.items() if k != "overlap_hidden")
            - report.breakdown.get("overlap_hidden", 0.0)
            - report.elapsed_ns
        ) < 1e3  # serial components + max-of-pipelined == elapsed

        # Matching candidates were never pruned.
        assert not (set(report.result.matching) & set(report.result.pruned))

        # Estimated distances are sorted and within [0, 2].
        d = report.result.distances
        assert np.all(np.diff(d) >= -1e-12)
        assert np.all((d >= 0) & (d <= 2.0))

    def test_scan_matches_true_top_k(self, query_name):
        prepared = prepare_workload(query_name, rows=rows_for(query_name), seed=7)
        config = HistSimConfig(k=prepared.query.k, epsilon=0.2, delta=0.05, sigma=0.0008)
        report = run_approach(prepared, "scan", config, seed=5)
        expected = true_top_k(
            prepared.exact_counts, prepared.target, config.k, config.sigma
        )
        assert set(report.result.matching) == set(int(i) for i in expected)
        assert report.audit.delta_d == pytest.approx(0.0)
