"""Tests for the in-memory ArraySampler (uniformity and budget semantics)."""

import numpy as np
import pytest

from repro.core.sampler import ArraySampler, TupleSampler


def make_sampler(n=10_000, candidates=5, groups=4, seed=0, batch=512):
    rng = np.random.default_rng(seed)
    z = rng.integers(0, candidates, size=n)
    x = rng.integers(0, groups, size=n)
    return ArraySampler(z, x, candidates, groups, rng, batch_size=batch), z, x


class TestProtocol:
    def test_satisfies_tuple_sampler_protocol(self):
        sampler, _, _ = make_sampler()
        assert isinstance(sampler, TupleSampler)

    def test_metadata(self):
        sampler, z, _ = make_sampler()
        assert sampler.total_rows == z.size
        assert sampler.num_candidates == 5
        assert sampler.num_groups == 4
        np.testing.assert_array_equal(
            sampler.candidate_rows(), np.bincount(z, minlength=5)
        )


class TestSampleUniform:
    def test_returns_requested_count(self):
        sampler, _, _ = make_sampler()
        counts = sampler.sample_uniform(1000)
        assert counts.sum() == 1000
        assert counts.shape == (5, 4)

    def test_truncates_at_end_of_data(self):
        sampler, _, _ = make_sampler(n=100)
        counts = sampler.sample_uniform(1000)
        assert counts.sum() == 100
        assert sampler.fully_scanned

    def test_joint_counts_match_data(self):
        """Consuming everything must reproduce the exact joint histogram."""
        sampler, z, x = make_sampler(n=3000)
        counts = sampler.sample_uniform(3000)
        expected = np.zeros((5, 4), dtype=np.int64)
        np.add.at(expected, (z, x), 1)
        np.testing.assert_array_equal(counts, expected)

    def test_sampling_is_without_replacement(self):
        sampler, _, _ = make_sampler(n=1000)
        a = sampler.sample_uniform(600)
        b = sampler.sample_uniform(600)
        assert a.sum() == 600
        assert b.sum() == 400  # only 400 rows remained

    def test_uniformity_chi_square_like(self):
        """Sample proportions track true proportions within tolerance."""
        rng = np.random.default_rng(11)
        z = rng.choice(3, size=50_000, p=[0.6, 0.3, 0.1])
        x = np.zeros_like(z)
        sampler = ArraySampler(z, x, 3, 1, np.random.default_rng(5))
        counts = sampler.sample_uniform(10_000).sum(axis=1)
        np.testing.assert_allclose(counts / 10_000, [0.6, 0.3, 0.1], atol=0.02)


class TestSampleUntil:
    def test_meets_budgets(self):
        sampler, _, _ = make_sampler()
        needed = np.array([100.0, 0.0, 50.0, 0.0, 0.0])
        fresh = sampler.sample_until(needed)
        rows = fresh.sum(axis=1)
        assert rows[0] >= 100
        assert rows[2] >= 50

    def test_infinite_budget_consumes_candidate(self):
        sampler, z, _ = make_sampler(n=2000)
        needed = np.full(5, 0.0)
        needed[1] = np.inf
        fresh = sampler.sample_until(needed)
        assert fresh[1].sum() == np.bincount(z, minlength=5)[1]
        assert sampler.fully_scanned

    def test_zero_budget_reads_nothing(self):
        sampler, _, _ = make_sampler()
        fresh = sampler.sample_until(np.zeros(5))
        assert fresh.sum() == 0
        assert not sampler.fully_scanned

    def test_budget_capped_by_remaining_rows(self):
        """Asking for more than a candidate has must terminate, not loop."""
        rng = np.random.default_rng(2)
        z = np.concatenate([np.zeros(50, dtype=int), np.ones(950, dtype=int)])
        x = np.zeros(1000, dtype=int)
        sampler = ArraySampler(z, x, 2, 1, rng)
        fresh = sampler.sample_until(np.array([1e9, 0.0]))
        assert fresh[0].sum() == 50

    def test_shape_validation(self):
        sampler, _, _ = make_sampler()
        with pytest.raises(ValueError):
            sampler.sample_until(np.zeros(4))

    def test_delivered_rows_tracks_everything(self):
        sampler, _, _ = make_sampler(n=5000)
        sampler.sample_uniform(1000)
        sampler.sample_until(np.array([200.0, 0, 0, 0, 0]))
        delivered = sampler.delivered_rows()
        assert delivered.sum() >= 1200


class TestValidation:
    def test_rejects_bad_codes(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            ArraySampler(np.array([0, 5]), np.array([0, 0]), 2, 2, rng)
        with pytest.raises(ValueError):
            ArraySampler(np.array([0, 1]), np.array([0, 7]), 2, 2, rng)
        with pytest.raises(ValueError):
            ArraySampler(np.array([0, 1]), np.array([0]), 2, 2, rng)
        with pytest.raises(ValueError):
            ArraySampler(np.array([0]), np.array([0]), 2, 2, rng, batch_size=0)
