"""Executor-offloaded step execution: identity matrix + wall-clock latency.

Two acceptance properties of ``max_concurrent_steps``:

1. **Byte-identity matrix** — answers under every combination of
   ``max_concurrent_steps`` ∈ {1, 4} × backend ∈ {serial, threads, sharded}
   × policy ∈ {fifo, edf-f} equal the standalone serial run.  Concurrency,
   backends, and policies shape latency, never answers (each job consumes
   its own fixed sampling order).
2. **Wall-clock regression** — with more than one step slot, a slow
   tenant's long step no longer blocks another tenant's deadline on the
   wall clock; with the classic single slot it does.
"""

from __future__ import annotations

import asyncio
import threading
import time
from types import SimpleNamespace

import numpy as np
import pytest

from repro import (
    FrontDoor,
    MatchSession,
    QueryRequest,
    SessionRegistry,
    match_histograms,
)
from repro.core import HistSimConfig
from repro.core.target import TargetSpec
from repro.parallel import ShardedBackend, ThreadPoolBackend
from repro.query import HistogramQuery
from repro.system.clock import WallClock

EPS, DELTA = 0.2, 0.05
CANDIDATES, GROUPS = 12, 5


def make_table(seed: int, n: int = 24_000):
    from repro.storage import CategoricalAttribute, ColumnTable, Schema

    rng = np.random.default_rng(seed)
    z = rng.integers(0, CANDIDATES, size=n)
    x = np.empty(n, dtype=np.int64)
    for c in range(CANDIDATES):
        mask = z == c
        base = np.full(GROUPS, 1.0 / GROUPS)
        if c >= 2:
            base[c % GROUPS] += 0.6
            base /= base.sum()
        x[mask] = rng.choice(GROUPS, size=int(mask.sum()), p=base)
    schema = Schema(
        (
            CategoricalAttribute("product", tuple(f"p{i}" for i in range(CANDIDATES))),
            CategoricalAttribute("age", tuple(f"a{i}" for i in range(GROUPS))),
        )
    )
    return ColumnTable(schema, {"product": z, "age": x})


@pytest.fixture(scope="module")
def table():
    return make_table(31)


def make_request(k: int, name: str, **overrides) -> QueryRequest:
    query = HistogramQuery(
        "product", "age", target=TargetSpec(kind="closest_to_uniform"), k=k,
        name=name,
    )
    config = HistSimConfig(k=k, epsilon=EPS, delta=DELTA, sigma=0.0)
    return QueryRequest(query, config=config, seed=3, name=name, **overrides)


def standalone(table, k: int):
    return match_histograms(
        table, "product", "age", k=k, epsilon=EPS, delta=DELTA, sigma=0.0,
        seed=3,
    )


def assert_reports_identical(report, reference, where: str) -> None:
    assert report.result.matching == reference.result.matching, where
    assert np.array_equal(report.result.histograms, reference.result.histograms), where
    assert np.array_equal(report.result.distances, reference.result.distances), where
    assert report.result.stats == reference.result.stats, where


@pytest.fixture(scope="module")
def references(table):
    return {2: standalone(table, 2), 3: standalone(table, 3)}


def make_backend_under_test(spec: str):
    """Backend instances sized to really exercise the executor/pool."""
    if spec == "serial":
        return "serial"
    if spec == "threads":
        return ThreadPoolBackend(2, min_shard_rows=0)
    if spec == "sharded":
        return ShardedBackend(2, min_shard_rows=0)
    raise AssertionError(spec)


# ---------------------------------------------------------------------------
# Byte-identity matrix: slots x backends x policies vs standalone serial
# ---------------------------------------------------------------------------


class TestConcurrencyIdentityMatrix:
    @pytest.mark.parametrize("concurrency", [1, 4])
    @pytest.mark.parametrize("backend_spec", ["serial", "threads", "sharded"])
    @pytest.mark.parametrize("policy", ["fifo", "edf-f"])
    def test_async_door_matches_standalone(
        self, table, references, policy, backend_spec, concurrency
    ):
        backend = make_backend_under_test(backend_spec)

        async def drive():
            session = MatchSession(table, backend=backend)
            async with session.serve_async(
                policy=policy, max_concurrent_steps=concurrency
            ) as door:
                handles = [
                    await door.submit(make_request(3, "first")),
                    await door.submit(make_request(2, "second")),
                    await door.submit(make_request(3, "third")),
                ]
                return [await handle.result() for handle in handles]

        try:
            reports = asyncio.run(drive())
            if backend_spec != "serial":
                assert backend.shard_tasks > 0  # the executor really ran
        finally:
            if backend_spec != "serial":
                backend.close()
        where = f"{policy}/{backend_spec}/slots={concurrency}"
        assert_reports_identical(reports[0], references[3], f"{where}/first")
        assert_reports_identical(reports[1], references[2], f"{where}/second")
        assert_reports_identical(reports[2], references[3], f"{where}/third")

    def test_thread_door_concurrent_slots_match_standalone(
        self, table, references
    ):
        """The thread FrontDoor's multi-slot loop: same identity contract."""
        backend = ThreadPoolBackend(2, min_shard_rows=0)
        try:
            session = MatchSession(table, backend=backend)
            with FrontDoor(
                session, policy="fifo", max_concurrent_steps=4
            ) as door:
                door.start()
                handles = [
                    door.submit(make_request(3, "first")),
                    door.submit(make_request(2, "second")),
                    door.submit(make_request(3, "third")),
                ]
                reports = [handle.result(timeout=120) for handle in handles]
            assert backend.shard_tasks > 0
            assert not backend.closed  # a passed-in backend is borrowed
        finally:
            backend.close()
        assert_reports_identical(reports[0], references[3], "thread/first")
        assert_reports_identical(reports[1], references[2], "thread/second")
        assert_reports_identical(reports[2], references[3], "thread/third")

    def test_multi_tenant_registry_concurrent_slots(self, table, references):
        """Two tenants behind one concurrent async door on a wall clock —
        the live-serving deployment shape — still answer byte-identically."""
        table_b = make_table(32)
        ref_b = standalone(table_b, 3)
        registry = SessionRegistry(
            backend=ThreadPoolBackend(2, min_shard_rows=0), clock=WallClock()
        )
        registry.add_dataset("a", table)
        registry.add_dataset("b", table_b)

        async def drive():
            async with registry.serve_async(
                policy="fifo", max_concurrent_steps=2
            ) as door:
                handles = [
                    await door.submit(make_request(3, "a0", dataset="a")),
                    await door.submit(make_request(3, "b0", dataset="b")),
                ]
                return [await handle.result() for handle in handles]

        try:
            reports = asyncio.run(drive())
        finally:
            registry.backend.close()
        assert_reports_identical(reports[0], references[3], "registry/a0")
        assert_reports_identical(reports[1], ref_b, "registry/b0")


# ---------------------------------------------------------------------------
# Wall-clock regression: a slow step must not block another tenant's deadline
# ---------------------------------------------------------------------------


class SleepJob:
    """Resumable job whose steps just sleep — wall-clock behaviour only."""

    def __init__(self, name, clock, step_s, steps):
        self.name = name
        self.clock = clock
        self.step_s = step_s
        self._remaining = steps

    @property
    def done(self):
        return self._remaining == 0

    def step(self):
        time.sleep(self.step_s)
        self._remaining -= 1

    def finish(self, service_ns):
        return SimpleNamespace(name=self.name, service_ns=service_ns)


class FakeService:
    """Minimal front-door service seam: routes requests to canned jobs."""

    def __init__(self, jobs):
        self.clock = WallClock()
        self.backend = None
        self._jobs = jobs
        self.closed = False

    def job_for_request(self, request, default_max_step_rows=None):
        return self._jobs[request.name]

    def close(self):
        self.closed = True


def fake_request(name, deadline_ns=None, on_deadline="miss"):
    return SimpleNamespace(
        name=name,
        query=SimpleNamespace(name=name),
        deadline_ns=deadline_ns,
        on_deadline=on_deadline,
    )


SLOW_STEP_S = 1.0
FAST_DEADLINE_NS = 0.5e9  # expires inside the slow step


class TestWallClockConcurrency:
    def run_scenario(self, max_concurrent_steps):
        service = FakeService({})
        service._jobs["slow"] = SleepJob("slow", service.clock, SLOW_STEP_S, 1)
        service._jobs["fast"] = SleepJob("fast", service.clock, 0.005, 3)
        door = FrontDoor(
            service, policy="fifo", max_concurrent_steps=max_concurrent_steps
        )
        # Submit both before starting the scheduler so FIFO deterministically
        # grants the slow tenant's long step first.
        slow_handle = door.submit(fake_request("slow"))
        fast_handle = door.submit(
            fake_request("fast", deadline_ns=FAST_DEADLINE_NS, on_deadline="miss")
        )
        door.start()
        fast = fast_handle.outcome(timeout=30)
        slow = slow_handle.outcome(timeout=30)
        door.shutdown()
        assert service.closed
        return slow, fast

    def test_single_slot_head_of_line_blocks_deadline(self):
        """Classic single-slot serving: the fast tenant sits behind the slow
        tenant's 1 s step and misses its 0.5 s deadline."""
        slow, fast = self.run_scenario(max_concurrent_steps=1)
        assert slow.status == "completed"
        assert fast.status == "miss"

    def test_concurrent_slots_isolate_the_fast_tenant(self):
        """With two step slots the fast tenant's 15 ms of work runs beside
        the slow step and completes well inside its deadline."""
        slow, fast = self.run_scenario(max_concurrent_steps=2)
        assert slow.status == "completed"
        assert fast.status == "completed"
        assert fast.deadline_hit
        # The whole point: latency is bounded by the tenant's own work,
        # not the neighbour's step (generous margin for loaded CI hosts).
        assert fast.latency_seconds < SLOW_STEP_S
