"""Observability subsystem: tracer, sketches, metrics, trace IO, CLI.

Covers the acceptance criteria of the tracing PR:

- the no-op tracer allocates nothing and is a shared singleton, so the
  untraced serving path is byte-identical to the pre-tracing code;
- spans stamp on the clock they are handed (simulated virtual time or the
  process monotonic clock) and nest via the thread-local parent stack;
- :class:`QuantileSketch` is exact below its capacity (byte-identical to
  the historical full-list percentiles) and bounded + close above it;
- every outcome status — including SHED, which used to raise — routes
  through one ``record_outcome`` seam, with per-tenant attribution;
- a traced replay exports schema-valid JSONL that round-trips through
  :class:`TraceReader`, and the reconstructed per-stage budget's
  queue+step sums tile each request's end-to-end latency within one
  clock tick;
- ``repro trace summarize`` prints the per-stage table from that file.
"""

from __future__ import annotations

import json
from types import SimpleNamespace

import numpy as np
import pytest

from repro import MatchSession, QueryRequest, SessionRegistry
from repro.cli import main as cli_main
from repro.core import HistSimConfig
from repro.core.target import TargetSpec
from repro.obs import (
    NULL_TRACER,
    QuantileSketch,
    SpanRecord,
    TraceReader,
    TraceSchemaError,
    TraceWriter,
    Tracer,
    summarize_records,
    validate_record,
)
from repro.query import HistogramQuery
from repro.serving.metrics import ServingMetrics
from repro.storage import CategoricalAttribute, ColumnTable, Schema
from repro.system.clock import SimulatedClock

CANDIDATES, GROUPS = 10, 5


def make_table(seed: int = 11, n: int = 20_000) -> ColumnTable:
    rng = np.random.default_rng(seed)
    z = rng.integers(0, CANDIDATES, size=n)
    x = np.empty(n, dtype=np.int64)
    for c in range(CANDIDATES):
        mask = z == c
        base = np.full(GROUPS, 1.0 / GROUPS)
        if c >= 2:
            base[c % GROUPS] += 0.5
            base /= base.sum()
        x[mask] = rng.choice(GROUPS, size=int(mask.sum()), p=base)
    schema = Schema(
        (
            CategoricalAttribute("product", tuple(f"p{i}" for i in range(CANDIDATES))),
            CategoricalAttribute("age", tuple(f"a{i}" for i in range(GROUPS))),
        )
    )
    return ColumnTable(schema, {"product": z, "age": x})


@pytest.fixture(scope="module")
def table():
    return make_table()


def make_request(name: str, *, k: int = 3, **overrides) -> QueryRequest:
    query = HistogramQuery(
        "product", "age", target=TargetSpec(kind="closest_to_uniform"), k=k,
        name=name,
    )
    config = HistSimConfig(k=k, epsilon=0.2, delta=0.05, sigma=0.0)
    return QueryRequest(query, config=config, seed=3, name=name, **overrides)


def outcome_like(status: str, *, deadline_ns=None, deadline_hit=False,
                 latency_ns=1e6, service_ns=5e5) -> SimpleNamespace:
    return SimpleNamespace(
        status=status, deadline_ns=deadline_ns, deadline_hit=deadline_hit,
        latency_ns=latency_ns, service_ns=service_ns,
    )


# ---------------------------------------------------------------------------
# NullTracer: the allocation-free default
# ---------------------------------------------------------------------------


class TestNullTracer:
    def test_disabled_singleton(self):
        assert NULL_TRACER.enabled is False
        assert NULL_TRACER.clock is None

    def test_span_is_one_preallocated_object(self):
        first = NULL_TRACER.span("a", clock=SimulatedClock(), name="x")
        second = NULL_TRACER.span("b")
        assert first is second  # no per-call allocation on the hot path

    def test_span_usable_as_context_manager(self):
        with NULL_TRACER.span("anything") as span:
            assert span.set(rows=7) is span

    def test_other_emissions_are_noops(self):
        assert NULL_TRACER.span_at("a", 0.0, 1.0) is None
        assert NULL_TRACER.event("a", name="x") is None
        NULL_TRACER.subscribe(object())  # accepted, ignored


# ---------------------------------------------------------------------------
# Tracer: clock stamping, nesting, sinks
# ---------------------------------------------------------------------------


class TestTracer:
    def test_span_stamps_on_simulated_clock(self):
        clock = SimulatedClock()
        tracer = Tracer(clock)
        with tracer.span("work", name="j0"):
            clock.charge_serial(io=1500.0)
        (record,) = tracer.records()
        assert record.name == "work"
        assert record.duration_ns == 1500.0
        assert record.clock == "SimulatedClock"
        assert record.attrs["name"] == "j0"

    def test_nesting_via_thread_local_stack(self):
        tracer = Tracer(SimulatedClock())
        with tracer.span("outer") as outer:
            with tracer.span("inner"):
                pass
        inner_rec, outer_rec = tracer.records()  # inner exits first
        assert inner_rec.name == "inner"
        assert inner_rec.parent_id == outer.span_id
        assert outer_rec.parent_id is None

    def test_span_at_with_string_clock_label(self):
        tracer = Tracer(SimulatedClock())
        record = tracer.span_at("pool.run", 10.0, 30.0, clock="monotonic", tasks=2)
        assert record.clock == "monotonic"  # not the tracer's default clock
        assert record.duration_ns == 20.0

    def test_event_is_instantaneous(self):
        clock = SimulatedClock()
        clock.charge_serial(io=42.0)
        tracer = Tracer(clock)
        record = tracer.event("cache.hit", layer="prepared")
        assert record.kind == "event"
        assert record.t0_ns == record.t1_ns == 42.0

    def test_sinks_see_every_record(self):
        tracer = Tracer(SimulatedClock())
        seen: list[SpanRecord] = []
        tracer.subscribe(SimpleNamespace(observe_span=seen.append))
        with tracer.span("a"):
            pass
        tracer.event("b")
        assert [r.name for r in seen] == ["a", "b"]

    def test_callback_adapter_emits_events(self):
        tracer = Tracer(SimulatedClock())
        emit = tracer.callback()
        emit("shm.publish", segment="seg-0", nbytes=64)
        (record,) = tracer.records()
        assert record.kind == "event"
        assert record.attrs == {"segment": "seg-0", "nbytes": 64}

    def test_retention_is_bounded_but_sinks_are_not(self):
        tracer = Tracer(SimulatedClock(), max_spans=8)
        count = SimpleNamespace(n=0)
        tracer.subscribe(
            SimpleNamespace(observe_span=lambda r: setattr(count, "n", count.n + 1))
        )
        for i in range(50):
            tracer.event(f"e{i}")
        assert len(tracer.records()) == 8
        assert count.n == 50


# ---------------------------------------------------------------------------
# QuantileSketch: exact regime, bounded regime
# ---------------------------------------------------------------------------


class TestQuantileSketch:
    def test_exact_below_capacity_matches_full_list(self):
        rng = np.random.default_rng(0)
        values = rng.uniform(0, 100, size=1000)
        sketch = QuantileSketch(4096)
        for v in values:
            sketch.observe(v)
        assert sketch.exact
        for q in (50, 95, 99):
            assert sketch.percentile(q) == float(np.percentile(values, q))
        assert sketch.mean == float(np.mean(values))
        assert sketch.count == 1000

    def test_bounded_and_close_above_capacity(self):
        rng = np.random.default_rng(1)
        values = rng.uniform(0.0, 1.0, size=20_000)
        sketch = QuantileSketch(1024)
        for v in values:
            sketch.observe(v)
        assert not sketch.exact
        assert len(sketch._samples) == 1024  # bounded memory — the bug fix
        assert sketch.count == 20_000
        assert sketch.minimum == float(values.min())
        assert sketch.maximum == float(values.max())
        assert sketch.total == pytest.approx(float(values.sum()))
        for q in (50, 95):
            exact = float(np.percentile(values, q))
            assert abs(sketch.percentile(q) - exact) < 0.05, q

    def test_deterministic_reservoir(self):
        a, b = QuantileSketch(64), QuantileSketch(64)
        for i in range(5000):
            a.observe(i)
            b.observe(i)
        assert a._samples == b._samples  # seeded: runs reproduce


# ---------------------------------------------------------------------------
# ServingMetrics: one recording seam, bounded sketches, exposition
# ---------------------------------------------------------------------------


class TestServingMetrics:
    def test_all_five_statuses_route_through_record_outcome(self):
        metrics = ServingMetrics()
        for status in ("completed", "partial", "miss", "cancelled", "shed"):
            metrics.record_outcome(outcome_like(status))
        assert metrics.completed == metrics.partial == 1
        assert metrics.missed == metrics.cancelled == metrics.shed == 1
        assert metrics.requests == 5

    def test_record_shed_counts_deadline_but_not_latency(self):
        metrics = ServingMetrics()
        metrics.record_shed(had_deadline=True, tenant="flights")
        metrics.record_shed(had_deadline=False)
        assert metrics.shed == 2
        assert metrics.deadline_requests == 1
        assert metrics.deadline_hits == 0
        snap = metrics.snapshot()
        assert snap.p50_latency_ms == 0.0  # sheds never ran: no samples
        assert snap.per_tenant["flights"]["shed"] == 1

    def test_unknown_status_rejected(self):
        with pytest.raises(ValueError, match="unknown outcome status"):
            ServingMetrics().record_outcome(outcome_like("exploded"))

    def test_bounded_snapshot_close_to_exact(self):
        rng = np.random.default_rng(2)
        latencies = rng.uniform(1e6, 9e6, size=5000)
        metrics = ServingMetrics(sketch_capacity=256)
        for latency in latencies:
            metrics.record_outcome(
                outcome_like("completed", latency_ns=latency, service_ns=latency / 2)
            )
        snap = metrics.snapshot()
        for got_ms, q in ((snap.p50_latency_ms, 50), (snap.p99_latency_ms, 99)):
            exact_ms = float(np.percentile(latencies, q)) * 1e-6
            assert got_ms == pytest.approx(exact_ms, rel=0.10), q
        assert snap.mean_latency_ms == pytest.approx(
            float(np.mean(latencies)) * 1e-6, rel=1e-9
        )

    def test_span_fed_stage_budgets(self):
        metrics = ServingMetrics()
        tracer = Tracer(SimulatedClock())
        tracer.subscribe(metrics)
        tracer.span_at("queue.wait", 0.0, 100.0, name="r0")
        tracer.span_at("stepper.stage2", 100.0, 400.0, name="r0", fresh_rows=64)
        tracer.event("request.submitted", name="r0")  # events never contribute
        snap = metrics.snapshot()
        assert snap.per_stage["queue"]["count"] == 1
        assert snap.per_stage["stage2"]["rows"] == 64
        assert snap.per_stage["stage2"]["total_ms"] == pytest.approx(300.0 * 1e-6)

    def test_prometheus_exposition(self):
        metrics = ServingMetrics()
        metrics.record_outcome(
            outcome_like("completed", deadline_ns=5e6, deadline_hit=True),
            tenant="flights",
        )
        metrics.record_shed(tenant="police")
        text = metrics.expose_text()
        assert 'repro_requests_total{status="completed"} 1' in text
        assert 'repro_requests_total{status="shed"} 1' in text
        assert "repro_deadline_hits_total 1" in text
        assert 'quantile="0.99"' in text
        assert 'repro_tenant_requests_total{tenant="police",status="shed"} 1' in text
        assert 'repro_tenant_latency_seconds{tenant="flights",quantile="0.5"}' in text


# ---------------------------------------------------------------------------
# Trace IO: schema validation + JSONL round-trip
# ---------------------------------------------------------------------------


class TestTraceIO:
    def test_writer_reader_round_trip(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tracer = Tracer(SimulatedClock())
        with TraceWriter(path) as writer:
            tracer.subscribe(writer)
            tracer.span_at("engine.step", 0.0, 50.0, name="r0", step=1)
            tracer.event("request.finalized", name="r0", latency_ns=50.0)
        records = TraceReader(path).records()
        assert [r.kind for r in records] == ["span", "event"]
        assert records[0].name == "engine.step"
        assert records[0].attrs == {"name": "r0", "step": 1}
        assert records[0].duration_ns == 50.0

    @pytest.mark.parametrize(
        "obj, message",
        [
            ({"v": 99, "kind": "span"}, "schema version"),
            ({"v": 1, "kind": "blob"}, "kind"),
            ({"v": 1, "kind": "span", "name": "", "id": 1}, "name"),
            (
                {"v": 1, "kind": "span", "name": "a", "id": 1, "parent": None,
                 "t0_ns": 5.0, "t1_ns": 1.0, "clock": "monotonic"},
                "ends before it starts",
            ),
            ([1, 2], "must be an object"),
        ],
    )
    def test_validate_rejects(self, obj, message):
        with pytest.raises(TraceSchemaError, match=message):
            validate_record(obj)

    def test_reader_rejects_corrupt_line_with_location(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            json.dumps({"v": 1, "kind": "header", "format": "repro.trace"})
            + "\nnot json at all\n"
        )
        with pytest.raises(TraceSchemaError, match="bad.jsonl:2"):
            TraceReader(path).records()


# ---------------------------------------------------------------------------
# End to end: traced replay == untraced replay, trace file is coherent
# ---------------------------------------------------------------------------


def replay_requests(table, tracer=None, writer=None):
    session = MatchSession(table, tracer=tracer)
    if tracer is not None and writer is not None:
        tracer.subscribe(writer)
    door = session.serve(policy="edf")
    try:
        outcomes = door.replay(
            [
                (0.0, make_request("r0", k=3)),
                (0.0, make_request("r1", k=2)),
                (50_000.0, make_request("r2", k=3)),
            ]
        )
    finally:
        door.shutdown()
    return session, outcomes


class TestEndToEnd:
    def test_traced_replay_identical_and_trace_coherent(self, table, tmp_path):
        _, untraced = replay_requests(table)
        path = tmp_path / "replay.jsonl"
        tracer = Tracer()
        writer = TraceWriter(path)
        session, traced = replay_requests(table, tracer, writer)
        writer.close()

        # Tracing never changes answers or the simulated timeline.
        for a, b in zip(untraced, traced):
            assert a.status == b.status == "completed"
            assert a.report.result.matching == b.report.result.matching
            assert np.array_equal(
                a.report.result.histograms, b.report.result.histograms
            )
            assert a.report.result.stats == b.report.result.stats
            assert a.latency_ns == b.latency_ns
            assert a.steps == b.steps

        records = TraceReader(path).records()  # validates every line
        summary = summarize_records(records)
        assert summary.requests == 3
        # Acceptance criterion: queue+step spans tile [submitted, finished]
        # within one tick of the clock that stamped them.
        assert summary.max_drift_ns <= session.clock.resolution_ns
        assert summary.total_latency_ns == pytest.approx(
            sum(o.latency_ns for o in traced)
        )
        # engine.step spans match the engine's own step accounting.
        step_spans = [r for r in records if r.name == "engine.step"]
        assert len(step_spans) == sum(o.steps for o in traced)
        # Stepper stages appear with calibration attributes.
        stage2 = [r for r in records if r.name == "stepper.stage2"]
        assert stage2, "no stage-2 spans recorded"
        for record in stage2:
            assert record.attrs["est_rows_before"] >= 0
            assert "fresh_rows" in record.attrs

    def test_registry_cache_events_carry_tenant(self, table):
        tracer = Tracer()
        registry = SessionRegistry(tracer=tracer)
        registry.add_dataset("flights", table)
        door = registry.serve(policy="fifo")
        try:
            door.replay(
                [
                    (0.0, make_request("c0", dataset="flights")),
                    (0.0, make_request("c0-again", dataset="flights")),
                ]
            )
        finally:
            door.shutdown()
        cache_events = [
            r for r in tracer.records() if r.name in ("cache.hit", "cache.miss")
        ]
        assert cache_events
        assert all(r.attrs["tenant"] == "flights" for r in cache_events)
        hits = [r for r in cache_events if r.name == "cache.hit"]
        assert hits, "second identical request should hit the prepared cache"
        snap = door.metrics.snapshot()
        assert snap.per_tenant["flights"]["completed"] == 2

    def test_cli_trace_summarize(self, table, tmp_path, capsys):
        path = tmp_path / "cli.jsonl"
        writer = TraceWriter(path)
        tracer = Tracer()
        replay_requests(table, tracer, writer)
        writer.close()
        assert cli_main(["trace", "summarize", str(path)]) == 0
        out = capsys.readouterr().out
        assert "stage" in out and "queue" in out and "stage2" in out
        assert "requests=3" in out

    def test_cli_trace_summarize_rejects_garbage(self, tmp_path, capsys):
        path = tmp_path / "garbage.jsonl"
        path.write_text('{"v": 1, "kind": "nonsense"}\n')
        assert cli_main(["trace", "summarize", str(path)]) == 1
        assert "invalid trace" in capsys.readouterr().err

    def test_cli_trace_summarize_missing_file(self, tmp_path, capsys):
        assert cli_main(["trace", "summarize", str(tmp_path / "nope.jsonl")]) == 1
        assert "not found" in capsys.readouterr().err
