"""Integration tests: all four approaches end-to-end on synthetic worlds."""

import numpy as np
import pytest

from repro.core import HistSimConfig, true_top_k
from repro.core.target import TargetSpec
from repro.query import Equals, HistogramQuery
from repro.storage import CategoricalAttribute, ColumnTable, CostModel, Schema
from repro.system import APPROACHES, PreparedQuery, SimulatedClock, StatsEngine, run_approach


def build_table(n, candidates, groups, seed, near_target=3, tilt=0.6):
    """Candidates 0..near_target-1 are close to uniform, the rest far."""
    rng = np.random.default_rng(seed)
    sizes = rng.multinomial(n, np.full(candidates, 1.0 / candidates))
    z_parts, x_parts = [], []
    for i, size in enumerate(sizes):
        base = np.full(groups, 1.0 / groups)
        if i >= near_target:
            base[i % groups] += tilt
            base /= base.sum()
        z_parts.append(np.full(size, i, dtype=np.int64))
        x_parts.append(rng.choice(groups, size=size, p=base))
    schema = Schema(
        (
            CategoricalAttribute("z", tuple(f"z{i}" for i in range(candidates))),
            CategoricalAttribute("x", tuple(f"x{i}" for i in range(groups))),
        )
    )
    return ColumnTable(
        schema, {"z": np.concatenate(z_parts), "x": np.concatenate(x_parts)}
    )


@pytest.fixture(scope="module")
def prepared():
    table = build_table(n=400_000, candidates=24, groups=6, seed=0)
    query = HistogramQuery(
        "z", "x", target=TargetSpec(kind="closest_to_uniform"), k=3, name="synthetic-q1"
    )
    return PreparedQuery.prepare(table, query, np.random.default_rng(1), block_size=150)


@pytest.fixture(scope="module")
def config():
    return HistSimConfig(
        k=3, epsilon=0.15, delta=0.05, sigma=0.0, stage1_samples=20_000
    )


class TestSimulatedClock:
    def test_serial_accumulates(self):
        clock = SimulatedClock()
        clock.charge_serial(io=100.0, stats=50.0)
        assert clock.elapsed_ns == 150.0
        assert clock.breakdown["io"] == 100.0

    def test_pipelined_takes_max(self):
        clock = SimulatedClock()
        clock.charge_pipelined(io_ns=100.0, mark_ns=30.0)
        assert clock.elapsed_ns == 100.0
        assert clock.breakdown["overlap_hidden"] == 30.0

    def test_negative_rejected(self):
        clock = SimulatedClock()
        with pytest.raises(ValueError):
            clock.charge_serial(io=-1.0)
        with pytest.raises(ValueError):
            clock.charge_pipelined(io_ns=-1.0, mark_ns=0.0)

    def test_seconds_conversion(self):
        clock = SimulatedClock()
        clock.charge_serial(io=2e9)
        assert clock.elapsed_seconds == pytest.approx(2.0)


class TestStatsEngine:
    def test_charges_clock(self):
        clock = SimulatedClock()
        se = StatsEngine(CostModel(stats_op_ns=2.0), clock)
        se("stage1", 100)
        se("stage2", 50)
        assert clock.breakdown["stats"] == pytest.approx(300.0)
        assert se.total_ops == 150


class TestScanBaseline:
    def test_scan_is_exact(self, prepared, config):
        report = run_approach(prepared, "scan", config, seed=0)
        truth = true_top_k(prepared.exact_counts, prepared.target, config.k, config.sigma)
        assert set(report.result.matching) == set(int(i) for i in truth)
        assert report.result.exact
        assert report.audit.ok
        assert report.audit.delta_d == pytest.approx(0.0)

    def test_scan_cost_covers_all_blocks(self, prepared, config):
        report = run_approach(prepared, "scan", config, seed=0)
        assert report.counters["blocks_read"] == prepared.shuffled.num_blocks


class TestApproachesEndToEnd:
    @pytest.mark.parametrize("approach", ["scanmatch", "syncmatch", "fastmatch"])
    def test_guarantees_hold(self, prepared, config, approach):
        report = run_approach(prepared, approach, config, seed=11)
        assert report.audit is not None
        assert report.audit.ok, f"{approach} violated guarantees: {report.audit}"

    @pytest.mark.parametrize("approach", ["scanmatch", "syncmatch", "fastmatch"])
    def test_faster_than_scan(self, prepared, config, approach):
        scan = run_approach(prepared, "scan", config, seed=11)
        approx = run_approach(prepared, approach, config, seed=11)
        assert approx.speedup_over(scan) > 1.0

    def test_fastmatch_reads_fewer_rows_than_scan(self, prepared, config):
        report = run_approach(prepared, "fastmatch", config, seed=3)
        assert report.counters["rows_delivered"] < prepared.shuffled.num_rows

    def test_fastmatch_hides_marking_cost(self, prepared, config):
        report = run_approach(prepared, "fastmatch", config, seed=3)
        assert report.breakdown.get("overlap_hidden", 0) > 0

    def test_syncmatch_serializes_marking(self, prepared, config):
        report = run_approach(prepared, "syncmatch", config, seed=3)
        assert report.breakdown.get("overlap_hidden", 0) == 0
        assert report.breakdown.get("mark", 0) > 0

    def test_deterministic_given_seed(self, prepared, config):
        a = run_approach(prepared, "fastmatch", config, seed=42)
        b = run_approach(prepared, "fastmatch", config, seed=42)
        assert a.result.matching == b.result.matching
        assert a.elapsed_ns == b.elapsed_ns

    def test_unknown_approach_rejected(self, prepared, config):
        with pytest.raises(ValueError):
            run_approach(prepared, "oracle", config)

    def test_all_approaches_registered(self):
        assert APPROACHES == ("scan", "scanmatch", "syncmatch", "fastmatch")


class TestPredicateQueries:
    def test_predicate_changes_ground_truth(self):
        table = build_table(n=150_000, candidates=10, groups=4, seed=5)
        base = HistogramQuery("z", "x", k=2, name="all")
        filtered = HistogramQuery(
            "z", "x", k=2, predicate=Equals("x", 0) | Equals("x", 1), name="filtered"
        )
        rng = np.random.default_rng(6)
        p_base = PreparedQuery.prepare(table, base, rng)
        p_filtered = PreparedQuery.prepare(table, filtered, rng)
        assert p_filtered.exact_counts.sum() < p_base.exact_counts.sum()
        assert p_filtered.exact_counts[:, 2:].sum() == 0

    def test_approaches_respect_predicate(self):
        table = build_table(n=150_000, candidates=10, groups=4, seed=5)
        query = HistogramQuery(
            "z", "x", k=2, predicate=Equals("x", 0) | Equals("x", 1), name="filtered"
        )
        prepared = PreparedQuery.prepare(table, query, np.random.default_rng(6))
        config = HistSimConfig(k=2, epsilon=0.2, delta=0.05, sigma=0.0)
        for approach in ("scan", "fastmatch"):
            report = run_approach(prepared, approach, config, seed=2)
            # Delivered histograms only contain surviving groups.
            assert report.result.histograms[:, 2:].sum() == 0
            assert report.audit.ok


class TestSelectivityPruning:
    def test_rare_candidates_pruned_and_audited(self):
        rng = np.random.default_rng(9)
        # 9 common candidates plus one ultra-rare.
        z = rng.integers(0, 9, size=200_000)
        z[:30] = 9
        x = rng.integers(0, 4, size=200_000)
        schema = Schema(
            (
                CategoricalAttribute("z", tuple(f"z{i}" for i in range(10))),
                CategoricalAttribute("x", tuple(f"x{i}" for i in range(4))),
            )
        )
        table = ColumnTable(schema, {"z": z, "x": x})
        query = HistogramQuery("z", "x", k=3, name="rare")
        prepared = PreparedQuery.prepare(table, query, rng)
        config = HistSimConfig(
            k=3, epsilon=0.15, delta=0.05, sigma=0.001,
            stage1_samples=50_000, stage1_max_fraction=0.5,
        )
        report = run_approach(prepared, "fastmatch", config, seed=4)
        assert 9 in report.result.pruned
        assert report.audit.ok
