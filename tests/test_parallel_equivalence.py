"""Byte-identity of the sharded backend vs serial execution.

The sharded backend's whole contract is that parallelism changes *nothing*
observable: same chosen top-k, same per-group counts, same rows sampled,
same stopping round, same simulated cost.  These tests compare full
:class:`MatchResult`/report state across backends on the edges the ISSUE
calls out — one worker, more shards than blocks, candidates exhausted
mid-round, predicates — plus session-level serving and resource cleanup
(no leaked ``/dev/shm`` segments or worker processes after
``MatchSession.close()``).
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core.config import HistSimConfig
from repro.data.generator import conditional_column, jittered
from repro.match import match_histograms
from repro.parallel import ShardedBackend, ThreadPoolBackend
from repro.query.predicate import IsIn
from repro.query.spec import HistogramQuery
from repro.storage.schema import CategoricalAttribute, Schema
from repro.storage.table import ColumnTable
from repro.system.session import MatchSession

NUM_CANDIDATES = 10
NUM_GROUPS = 6


def shm_files() -> set[str]:
    if not os.path.isdir("/dev/shm"):
        return set()
    return {f for f in os.listdir("/dev/shm") if f.startswith("repro-")}


@pytest.fixture(scope="module")
def table() -> ColumnTable:
    rng = np.random.default_rng(42)
    # Uneven candidate sizes, one deliberately rare (exhausts early).
    sizes = np.array([900, 800, 700, 600, 500, 400, 300, 200, 100, 24])
    base = np.full(NUM_GROUPS, 1.0 / NUM_GROUPS)
    distributions = np.stack(
        [jittered(base, concentration=30.0, rng=rng) for _ in sizes]
    )
    z = np.repeat(np.arange(sizes.size, dtype=np.int64), sizes)
    x = conditional_column(sizes, distributions, rng)
    order = rng.permutation(z.size)
    schema = Schema(
        (
            CategoricalAttribute("z", tuple(f"z{i}" for i in range(NUM_CANDIDATES))),
            CategoricalAttribute("x", tuple(f"x{i}" for i in range(NUM_GROUPS))),
        )
    )
    return ColumnTable(schema, {"z": z[order], "x": x[order]})


def run_match(table, backend, approach="fastmatch", predicate=None, epsilon=0.15):
    return match_histograms(
        table,
        "z",
        "x",
        k=3,
        epsilon=epsilon,
        delta=0.05,
        approach=approach,
        seed=9,
        block_size=32,
        predicate=predicate,
        backend=backend,
    )


def assert_reports_identical(serial, sharded, backend_name="sharded"):
    a, b = serial.result, sharded.result
    assert a.matching == b.matching
    np.testing.assert_array_equal(a.histograms, b.histograms)
    np.testing.assert_array_equal(a.distances, b.distances)
    assert a.pruned == b.pruned
    assert a.exact == b.exact
    assert a.stats == b.stats  # samples per stage + stopping round
    assert len(a.rounds) == len(b.rounds)
    for ra, rb in zip(a.rounds, b.rounds):
        assert ra == rb
    assert serial.counters == sharded.counters
    assert serial.elapsed_ns == sharded.elapsed_ns
    assert serial.backend == "serial"
    assert sharded.backend == backend_name


@pytest.mark.parametrize("approach", ["scanmatch", "syncmatch", "fastmatch"])
def test_byte_identity_across_approaches(table, approach):
    serial = run_match(table, "serial", approach=approach)
    with ShardedBackend(2, min_shard_rows=0) as backend:
        sharded = run_match(table, backend, approach=approach)
    assert_reports_identical(serial, sharded)


def test_single_worker_identity(table):
    serial = run_match(table, "serial")
    with ShardedBackend(1, min_shard_rows=0) as backend:
        sharded = run_match(table, backend)
    assert_reports_identical(serial, sharded)


def test_more_shards_than_blocks(table):
    # block_size 2048 over ~4.5k rows -> 3 blocks, 8 workers: the planner
    # must degrade to <= 3 single-block shards, never an empty one.
    serial = match_histograms(
        table, "z", "x", k=3, epsilon=0.15, seed=9, block_size=2048,
        backend="serial",
    )
    with ShardedBackend(8, min_shard_rows=0) as backend:
        sharded = match_histograms(
            table, "z", "x", k=3, epsilon=0.15, seed=9, block_size=2048,
            backend=backend,
        )
    assert_reports_identical(serial, sharded)


def test_exhausted_candidates_mid_round(table):
    # A tight tolerance drives sampling until rare candidates run dry; the
    # run ends exact, with the rare candidate's rows fully consumed.
    serial = run_match(table, "serial", epsilon=0.02)
    with ShardedBackend(2, min_shard_rows=0) as backend:
        sharded = run_match(table, backend, epsilon=0.02)
    assert serial.result.exact, "test premise: tolerance forces a full scan"
    assert_reports_identical(serial, sharded)


def test_predicate_row_filter_identity(table):
    predicate = IsIn("x", (0, 1, 2, 3))
    serial = run_match(table, "serial", predicate=predicate)
    with ShardedBackend(2, min_shard_rows=0) as backend:
        sharded = run_match(table, backend, predicate=predicate)
    assert_reports_identical(serial, sharded)


@pytest.mark.parametrize("approach", ["scanmatch", "syncmatch", "fastmatch"])
def test_threadpool_backend_identity(table, approach):
    """The in-process thread backend: same kernel, same partition, same
    merge — byte-identical to serial across every approach."""
    serial = run_match(table, "serial", approach=approach)
    with ThreadPoolBackend(2, min_shard_rows=0) as backend:
        threaded = run_match(table, backend, approach=approach)
        assert backend.shard_tasks > 0
    assert_reports_identical(serial, threaded, backend_name="threads")


def test_threadpool_predicate_identity(table):
    predicate = IsIn("x", (0, 1, 2, 3))
    serial = run_match(table, "serial", predicate=predicate)
    with ThreadPoolBackend(2, min_shard_rows=0) as backend:
        threaded = run_match(table, backend, predicate=predicate)
    assert_reports_identical(serial, threaded, backend_name="threads")


# ---------------------------------------------------------------------------
# Session-level equivalence and lifecycle
# ---------------------------------------------------------------------------


def queries():
    return [
        HistogramQuery(candidate_attribute="z", grouping_attribute="x", k=3,
                       name="q-uniform"),
        HistogramQuery(candidate_attribute="z", grouping_attribute="x", k=2,
                       name="q-filtered",
                       predicate=IsIn("x", (0, 1, 2))),
    ]


def session_config(k):
    return HistSimConfig(k=k, epsilon=0.15, delta=0.05, sigma=0.0)


def drain(session):
    for query in queries():
        session.submit(query, config=session_config(query.k), seed=4,
                       max_step_rows=500)
    return session.run()


def test_session_equivalence_and_backend_attribution(table):
    with MatchSession(table, audit=True) as serial_session:
        serial_run = drain(serial_session)
    # A passed-in backend instance is the caller's to close (the session
    # only closes backends it created from a string spec).
    with ShardedBackend(2, min_shard_rows=0) as backend:
        with MatchSession(table, audit=True, backend=backend) as sharded_session:
            sharded_run = drain(sharded_session)
        assert not backend.closed  # survived session close: reusable

    assert serial_run.backend == {"backend": "serial"}
    assert sharded_run.backend["backend"] == "sharded"
    assert sharded_run.backend["workers"] == 2
    assert sharded_run.backend["shard_tasks"] > 0

    assert len(serial_run) == len(sharded_run)
    for a, b in zip(serial_run, sharded_run):
        assert a.name == b.name
        assert a.report.result.matching == b.report.result.matching
        np.testing.assert_array_equal(
            a.report.result.histograms, b.report.result.histograms
        )
        assert a.report.result.stats == b.report.result.stats
        assert a.latency_ns == b.latency_ns
        assert a.steps == b.steps
        assert b.report.backend == "sharded"


def test_session_close_releases_shared_memory_and_workers(table):
    before = shm_files()
    session = MatchSession(table, backend="sharded", workers=2)
    # Force pool usage even on tiny windows.
    session.backend.min_shard_rows = 0
    session.submit(queries()[0], config=session_config(3), seed=4)
    session.run()
    store = session.backend.store
    pool = session.backend.pool
    assert store.num_segments > 0
    created = set(store.segment_names())
    if os.path.isdir("/dev/shm"):
        assert created <= shm_files()
    assert pool.alive_workers == 2

    session.close()
    assert shm_files() <= before  # nothing we created survives
    assert store.num_segments == 0
    assert pool.alive_workers == 0
    session.close()  # idempotent
    with pytest.raises(RuntimeError):
        session.backend.pool.run([])


def test_closed_backend_refuses_new_work(table):
    backend = ShardedBackend(1, min_shard_rows=0)
    backend.close()
    with pytest.raises(RuntimeError):
        _ = backend.pool


def test_shared_backend_reused_across_sessions(table):
    # One pool + one set of published segments serves two sessions over the
    # same dataset; the second session's results still match serial.
    serial = run_match(table, "serial")
    with ShardedBackend(2, min_shard_rows=0) as backend:
        for _ in range(2):
            with MatchSession(table, backend=backend) as session:
                session.submit(
                    HistogramQuery(candidate_attribute="z",
                                   grouping_attribute="x", k=3),
                    config=session_config(3),
                    seed=9,
                )
                run = session.run()
            assert run[0].report.result.stats == serial.result.stats
        assert backend.pool.alive_workers == 2


def test_exact_counts_sharded_identity(table):
    """Satellite: the ground-truth pass shards with byte-identical output,
    with and without a predicate (the filter ships as per-shard slices)."""
    from repro.query.executor import exact_candidate_counts

    plain = HistogramQuery("z", "x", k=3)
    filtered = HistogramQuery("z", "x", k=3, predicate=IsIn("x", (0, 1, 2, 3)))
    with ShardedBackend(2, min_shard_rows=0) as backend:
        for query in (plain, filtered):
            serial = exact_candidate_counts(table, query)
            sharded = exact_candidate_counts(table, query, backend=backend)
            assert serial.dtype == sharded.dtype
            assert np.array_equal(serial, sharded)
        assert backend.shard_tasks > 0  # the pool really ran the pass
    assert shm_files() == set()


def test_scan_baseline_sharded_identity(table):
    """Satellite: the Scan baseline through the sharded backend reports the
    exact same result and simulated cost as serial."""
    serial = run_match(table, "serial", approach="scan")
    with ShardedBackend(2, min_shard_rows=0) as backend:
        sharded = run_match(table, backend, approach="scan")
    assert sharded.backend == "sharded"
    assert sharded.result.matching == serial.result.matching
    assert np.array_equal(sharded.result.histograms, serial.result.histograms)
    assert sharded.elapsed_ns == serial.elapsed_ns
    assert shm_files() == set()


def test_cli_workers_ignored_with_warning_on_serial(table, capsys):
    """Satellite bugfix: --workers with --backend serial is ignored with a
    warning — neither silently accepted nor a hard error."""
    from repro.cli import main

    code = main(["--query", "flights-q1", "--rows", "20000",
                 "--workers", "2", "--no-render"])
    captured = capsys.readouterr()
    assert code == 0
    assert "--workers 2 is ignored" in captured.err
    assert "backend    : serial" in captured.out


def test_cli_scan_accepts_sharded_backend(table, capsys):
    """The exact scan baseline now routes its counting pass through the
    sharded backend (byte-identical; previously a hard CLI error)."""
    from repro.cli import main

    code = main(["--query", "flights-q1", "--rows", "20000",
                 "--approach", "scan", "--backend", "sharded",
                 "--workers", "2", "--no-render"])
    out = capsys.readouterr().out
    assert code == 0
    assert "backend    : sharded" in out
    assert shm_files() == set()


def test_cli_batch_sharded(table, capsys):
    from repro.cli import main

    code = main(
        [
            "batch",
            "--queries", "flights-q1",
            "--rows", "20000",
            "--backend", "sharded",
            "--workers", "2",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "backend=sharded" in out
    assert "workers=2" in out
    assert shm_files() == set()
