"""Tests for the Appendix A extensions."""

import numpy as np
import pytest

from repro.core import ArraySampler, HistSimConfig, audit_result, l1_distance, run_histsim
from repro.core.distance import l2_distance, normalize
from repro.extensions import (
    MeasureBiasedSampler,
    PredicateCandidateSampler,
    choose_k,
    composite_grouping,
    composite_support_size,
    exact_predicate_counts,
    exact_sum_histograms,
    l2_epsilon_given_samples,
    l2_samples_for_deviation,
    l2_top_k,
    measure_biased_order,
    predicate_block_counts,
    prune_unknown_domain,
    run_histsim_dual_epsilon,
    run_histsim_range_k,
)
from repro.bitmap import DensityMap
from repro.query import Equals, IsIn
from repro.storage import CategoricalAttribute, ColumnTable, Schema


def make_population(rng, sizes, dists):
    z_parts, x_parts = [], []
    for i, (size, dist) in enumerate(zip(sizes, dists)):
        z_parts.append(np.full(size, i, dtype=np.int64))
        x_parts.append(rng.choice(len(dist), size=size, p=dist))
    return np.concatenate(z_parts), np.concatenate(x_parts)


class TestMeasureBiasedSampling:
    def test_order_prefers_heavy_rows(self):
        rng = np.random.default_rng(0)
        measure = np.concatenate([np.full(100, 100.0), np.full(900, 1.0)])
        order = measure_biased_order(measure, rng)
        # Heavy rows should dominate early positions.
        early = order[:100]
        assert (early < 100).mean() > 0.5

    def test_zero_measure_rows_sort_last(self):
        rng = np.random.default_rng(1)
        measure = np.array([0.0, 5.0, 0.0, 2.0])
        order = measure_biased_order(measure, rng)
        assert set(order[-2:]) == {0, 2}

    def test_negative_measure_rejected(self):
        with pytest.raises(ValueError):
            measure_biased_order(np.array([-1.0]), np.random.default_rng(0))

    def test_count_estimates_converge_to_sum_distribution(self):
        """COUNT over the biased stream ≈ SUM(Y) shape (Appendix A.1.1)."""
        rng = np.random.default_rng(2)
        n = 60_000
        z = rng.integers(0, 3, size=n)
        x = rng.integers(0, 4, size=n)
        # Candidate 0's measure is concentrated on group 0.
        measure = np.where((z == 0) & (x == 0), 50.0, 1.0)
        sampler = MeasureBiasedSampler(z, x, measure, 3, 4, rng)
        counts = sampler.sample_uniform(20_000)
        truth = exact_sum_histograms(z, x, measure, 3, 4)
        assert l1_distance(counts[0], truth[0]) < 0.1

    def test_histsim_runs_on_biased_stream(self):
        rng = np.random.default_rng(3)
        n = 40_000
        z = rng.integers(0, 5, size=n)
        x = rng.integers(0, 4, size=n)
        measure = rng.exponential(size=n) + 0.1
        sampler = MeasureBiasedSampler(z, x, measure, 5, 4, rng)
        config = HistSimConfig(k=2, epsilon=0.25, delta=0.05, sigma=0.0)
        result = run_histsim(sampler, np.ones(4), config)
        truth = exact_sum_histograms(z, x, measure, 5, 4)
        audit = audit_result(result, truth, np.ones(4), 0.25, 0.0)
        assert audit.reconstruction_ok


@pytest.fixture
def predicate_world():
    rng = np.random.default_rng(5)
    n = 30_000
    schema = Schema(
        (
            CategoricalAttribute("z1", ("a", "b", "c")),
            CategoricalAttribute("z2", ("p", "q")),
            CategoricalAttribute("x", tuple(f"x{i}" for i in range(4))),
        )
    )
    table = ColumnTable(
        schema,
        {
            "z1": rng.integers(0, 3, size=n),
            "z2": rng.integers(0, 2, size=n),
            "x": rng.integers(0, 4, size=n),
        },
    )
    candidates = [
        Equals("z1", 0) & Equals("z2", 0),
        Equals("z1", 1) | Equals("z2", 1),
        IsIn("z1", (0, 2)),
    ]
    return table, candidates


class TestPredicateCandidates:
    def test_exact_counts_match_masks(self, predicate_world):
        table, candidates = predicate_world
        counts = exact_predicate_counts(table, candidates, "x")
        for row, predicate in enumerate(candidates):
            mask = predicate.mask(table)
            expected = np.bincount(table.column("x")[mask], minlength=4)
            np.testing.assert_array_equal(counts[row], expected)

    def test_sampler_full_scan_reproduces_exact(self, predicate_world):
        table, candidates = predicate_world
        sampler = PredicateCandidateSampler(
            table, candidates, "x", np.random.default_rng(6)
        )
        fresh = sampler.sample_until(np.full(3, np.inf))
        truth = exact_predicate_counts(table, candidates, "x")
        np.testing.assert_array_equal(fresh, truth)

    def test_overlapping_candidates_both_counted(self, predicate_world):
        table, candidates = predicate_world
        sampler = PredicateCandidateSampler(
            table, candidates, "x", np.random.default_rng(7)
        )
        counts = sampler.sample_uniform(5000)
        # Candidates 0 and 2 overlap (both include z1=0 rows): delivered
        # totals exceed the number of scanned tuples.
        assert counts.sum() > 5000

    def test_histsim_over_predicate_candidates(self, predicate_world):
        table, candidates = predicate_world
        sampler = PredicateCandidateSampler(
            table, candidates, "x", np.random.default_rng(8)
        )
        config = HistSimConfig(k=1, epsilon=0.3, delta=0.05, sigma=0.0)
        result = run_histsim(sampler, np.ones(4), config)
        truth = exact_predicate_counts(table, candidates, "x")
        audit = audit_result(result, truth, np.ones(4), 0.3, 0.0)
        assert audit.reconstruction_ok

    def test_density_map_block_counts(self, predicate_world):
        table, _ = predicate_world
        dm = DensityMap.build(table.column("z1"), 3, block_size=64)
        mask = np.array([True, False, True])
        got = predicate_block_counts(dm, mask, 0, 10)
        col = table.column("z1")
        for b in range(10):
            chunk = col[b * 64 : (b + 1) * 64]
            assert got[b] == np.isin(chunk, [0, 2]).sum()


class TestCompositeGrouping:
    def test_support_size(self, predicate_world):
        table, _ = predicate_world
        assert composite_support_size(table, ("z1", "z2")) == 6
        assert composite_support_size(table, ("z1", "z2", "x")) == 24

    def test_codes_roundtrip(self, predicate_world):
        table, _ = predicate_world
        codes, cardinality, labels = composite_grouping(table, ("z1", "z2"))
        assert cardinality == 6
        assert len(labels) == 6
        z1, z2 = table.column("z1"), table.column("z2")
        np.testing.assert_array_equal(codes, z1 * 2 + z2)
        assert labels[0] == "a|p"
        assert labels[5] == "c|q"

    def test_empty_attributes_rejected(self, predicate_world):
        table, _ = predicate_world
        with pytest.raises(ValueError):
            composite_support_size(table, ())


class TestUnknownDomain:
    def test_unseen_flagged_rare_when_sample_large(self):
        rng = np.random.default_rng(9)
        # 3 frequent values; sample is large, so anything unseen is rare.
        values = rng.integers(0, 3, size=50_000)
        out = prune_unknown_domain(values, total_rows=100_000, sigma=0.01, delta=0.05)
        assert out.unseen_all_rare
        assert out.seen_values == (0, 1, 2)
        assert out.pruned_seen == ()

    def test_small_sample_cannot_certify_unseen(self):
        rng = np.random.default_rng(10)
        values = rng.integers(0, 3, size=30)
        out = prune_unknown_domain(values, total_rows=1_000_000, sigma=0.0001, delta=0.05)
        assert not out.unseen_all_rare

    def test_rare_seen_value_pruned(self):
        rng = np.random.default_rng(11)
        values = np.concatenate([rng.integers(0, 2, size=49_999), [7]])
        out = prune_unknown_domain(values, total_rows=100_000, sigma=0.01, delta=0.05)
        assert 7 in out.pruned_seen

    def test_validation(self):
        with pytest.raises(ValueError):
            prune_unknown_domain(np.array([]), 10, 0.1, 0.05)
        with pytest.raises(ValueError):
            prune_unknown_domain(np.zeros(20, dtype=int), 10, 0.1, 0.05)


class TestRangeK:
    def test_choose_k_picks_widest_gap(self):
        distances = np.array([0.1, 0.12, 0.14, 0.5, 0.52, 0.62])
        alive = np.ones(6, dtype=bool)
        assert choose_k(distances, alive, 2, 5) == 3  # gap 0.14 -> 0.5 widest
        assert choose_k(distances, alive, 4, 5) == 5  # gap 0.52 -> 0.62 beats 0.5 -> 0.52

    def test_choose_k_respects_bounds(self):
        distances = np.array([0.1, 0.9])
        alive = np.ones(2, dtype=bool)
        assert choose_k(distances, alive, 1, 1) == 1
        with pytest.raises(ValueError):
            choose_k(distances, alive, 3, 2)

    def test_run_with_adaptive_k(self):
        rng = np.random.default_rng(12)
        dists = []
        for i in range(12):
            base = np.full(6, 1.0 / 6)
            if i >= 3:
                base[i % 6] += 0.8
                base /= base.sum()
            dists.append(base)
        z, x = make_population(rng, [6000] * 12, dists)
        sampler = ArraySampler(z, x, 12, 6, np.random.default_rng(13))
        config = HistSimConfig(k=1, epsilon=0.2, delta=0.05, sigma=0.0, stage1_samples=4000)
        result = run_histsim_range_k(sampler, np.ones(6), config, k_min=2, k_max=6)
        # The natural gap sits after the 3 planted flat candidates.
        assert result.k == 3
        assert set(result.matching) == {0, 1, 2}


class TestDualEpsilon:
    def test_tighter_reconstruction_takes_more_samples(self):
        rng = np.random.default_rng(14)
        dists = [np.full(6, 1.0 / 6)] * 8
        z, x = make_population(rng, [40_000] * 8, dists)
        config = HistSimConfig(k=2, epsilon=0.3, delta=0.05, sigma=0.0, stage1_samples=4000)

        loose = run_histsim_dual_epsilon(
            ArraySampler(z, x, 8, 6, np.random.default_rng(1)),
            np.ones(6), config, epsilon_separation=0.3, epsilon_reconstruction=0.3,
        )
        tight = run_histsim_dual_epsilon(
            ArraySampler(z, x, 8, 6, np.random.default_rng(1)),
            np.ones(6), config, epsilon_separation=0.3, epsilon_reconstruction=0.1,
        )
        assert tight.stats.total_samples > loose.stats.total_samples

    def test_reconstruction_honors_eps2(self):
        rng = np.random.default_rng(15)
        dists = [np.full(4, 0.25)] * 5
        z, x = make_population(rng, [50_000] * 5, dists)
        truth = np.zeros((5, 4), dtype=np.int64)
        np.add.at(truth, (z, x), 1)
        config = HistSimConfig(k=2, epsilon=0.4, delta=0.05, sigma=0.0, stage1_samples=4000)
        result = run_histsim_dual_epsilon(
            ArraySampler(z, x, 5, 4, np.random.default_rng(2)),
            np.ones(4), config, epsilon_separation=0.4, epsilon_reconstruction=0.05,
        )
        audit = audit_result(result, truth, np.ones(4), epsilon=0.05, sigma=0.0)
        assert audit.reconstruction_ok

    def test_validation(self):
        rng = np.random.default_rng(0)
        z, x = make_population(rng, [100], [np.array([1.0])])
        sampler = ArraySampler(z, x, 1, 1, rng)
        config = HistSimConfig(k=1, epsilon=0.2, delta=0.05)
        with pytest.raises(ValueError):
            run_histsim_dual_epsilon(sampler, np.ones(1), config, 0.2, 0.0)


class TestL2Metric:
    def test_bound_inversion_roundtrip(self):
        for eps in (0.05, 0.1, 0.3):
            n = l2_samples_for_deviation(eps, 0.01)
            assert l2_epsilon_given_samples(n, 0.01) <= eps * (1 + 1e-9)

    def test_support_independence(self):
        """The L2 sample bound has no |V_X| factor (unlike L1)."""
        assert l2_samples_for_deviation(0.1, 0.01) == l2_samples_for_deviation(0.1, 0.01)
        # and is far below the L1 requirement at large support:
        from repro.core.deviation import samples_for_deviation

        assert l2_samples_for_deviation(0.1, 0.01) < samples_for_deviation(0.1, 0.01, 351)

    def test_l2_deviation_bound_monte_carlo(self):
        rng = np.random.default_rng(16)
        p = np.array([0.4, 0.3, 0.2, 0.1])
        n = 500
        violations = 0
        eps = l2_epsilon_given_samples(n, 0.05)
        for _ in range(200):
            sample = rng.multinomial(n, p) / n
            if np.sqrt(np.square(sample - p).sum()) >= eps:
                violations += 1
        assert violations / 200 <= 0.05 + 0.03

    def test_l2_top_k_finds_closest(self):
        rng = np.random.default_rng(17)
        dists = []
        for i in range(10):
            base = np.full(6, 1.0 / 6)
            if i >= 2:
                base[i % 6] += 0.7
                base /= base.sum()
            dists.append(base)
        z, x = make_population(rng, [30_000] * 10, dists)
        sampler = ArraySampler(z, x, 10, 6, np.random.default_rng(18))
        config = HistSimConfig(k=2, epsilon=0.2, delta=0.05, sigma=0.0)
        result = l2_top_k(sampler, np.ones(6), config)
        assert set(result.matching) == {0, 1}
        # Reported distances are L2, hence no larger than L1 equivalents.
        truth = np.zeros((10, 6), dtype=np.int64)
        np.add.at(truth, (z, x), 1)
        for pos, cand in enumerate(result.matching):
            l2_est = result.distances[pos]
            assert l2_est <= l1_distance(truth[cand], np.ones(6)) + 0.2
