"""Unit tests for the sharded execution subsystem's building blocks:
planner, shared-memory store, worker kernel, pool, and merger."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.parallel import (
    SegmentRef,
    Shard,
    ShardMerger,
    ShardPlanner,
    ShardedBackend,
    SharedMemoryStore,
    WorkerPool,
    count_shard,
    make_backend,
)
from repro.parallel.backend import SerialBackend
from repro.parallel.worker import ShardResult, ShardTask
from repro.storage.blocks import BlockLayout


def shm_files() -> set[str]:
    """Current repro-owned segments in /dev/shm (Linux) or empty elsewhere."""
    if not os.path.isdir("/dev/shm"):
        return set()
    return {f for f in os.listdir("/dev/shm") if f.startswith("repro-")}


# ---------------------------------------------------------------------------
# ShardPlanner
# ---------------------------------------------------------------------------


class TestShardPlanner:
    def test_partition_covers_blocks_exactly_once(self):
        layout = BlockLayout(num_rows=1000, block_size=32)
        blocks = np.arange(layout.num_blocks, dtype=np.int64)
        shards = ShardPlanner(4).plan(blocks, layout)
        recovered = np.concatenate([s.blocks for s in shards])
        np.testing.assert_array_equal(recovered, blocks)
        assert sum(s.rows for s in shards) == 1000

    def test_balanced_by_rows(self):
        layout = BlockLayout(num_rows=64 * 100, block_size=64)
        blocks = np.arange(100, dtype=np.int64)
        shards = ShardPlanner(4).plan(blocks, layout)
        assert len(shards) == 4
        rows = [s.rows for s in shards]
        assert max(rows) - min(rows) <= 64  # within one block of perfect

    def test_more_shards_than_blocks(self):
        layout = BlockLayout(num_rows=96, block_size=32)
        blocks = np.arange(3, dtype=np.int64)
        shards = ShardPlanner(8).plan(blocks, layout)
        assert 1 <= len(shards) <= 3
        assert all(s.blocks.size >= 1 for s in shards)
        recovered = np.concatenate([s.blocks for s in shards])
        np.testing.assert_array_equal(recovered, blocks)

    def test_empty_blocks(self):
        layout = BlockLayout(num_rows=100, block_size=10)
        assert ShardPlanner(4).plan(np.empty(0, dtype=np.int64), layout) == []

    def test_single_block(self):
        layout = BlockLayout(num_rows=100, block_size=10)
        shards = ShardPlanner(4).plan(np.array([3]), layout)
        assert len(shards) == 1 and shards[0].rows == 10

    def test_short_final_block_rows(self):
        layout = BlockLayout(num_rows=105, block_size=10)  # last block: 5 rows
        blocks = np.arange(layout.num_blocks, dtype=np.int64)
        shards = ShardPlanner(3).plan(blocks, layout)
        assert sum(s.rows for s in shards) == 105

    def test_rejects_unsorted(self):
        layout = BlockLayout(num_rows=100, block_size=10)
        with pytest.raises(ValueError):
            ShardPlanner(2).plan(np.array([3, 1]), layout)
        with pytest.raises(ValueError):
            ShardPlanner(2).plan(np.array([1, 1]), layout)

    def test_rejects_bad_n_shards(self):
        with pytest.raises(ValueError):
            ShardPlanner(0)

    def test_shard_validation(self):
        with pytest.raises(ValueError):
            Shard(index=0, blocks=np.empty(0, dtype=np.int64), rows=1)
        with pytest.raises(ValueError):
            Shard(index=0, blocks=np.array([1]), rows=0)


# ---------------------------------------------------------------------------
# SharedMemoryStore
# ---------------------------------------------------------------------------


class TestSharedMemoryStore:
    def test_publish_roundtrip_preserves_dtype_and_values(self):
        from repro.parallel.shm import attach_segment

        store = SharedMemoryStore()
        try:
            data = np.arange(100, dtype=np.uint16)
            ref = store.publish("key", data)
            assert ref.dtype == np.dtype(np.uint16).str
            shm, view = attach_segment(ref)
            np.testing.assert_array_equal(view, data)
            assert view.dtype == np.uint16
            shm.close()
        finally:
            store.close()

    def test_publish_is_memoized_per_key(self):
        with SharedMemoryStore() as store:
            a = store.publish("k", np.arange(10))
            b = store.publish("k", np.arange(10))
            assert a == b and store.num_segments == 1

    def test_close_unlinks_segments(self):
        store = SharedMemoryStore()
        store.publish("k1", np.arange(64))
        store.publish("k2", np.ones(64, dtype=bool))
        names = set(store.segment_names())
        assert len(names) == 2
        if os.path.isdir("/dev/shm"):
            assert names <= set(os.listdir("/dev/shm"))
        store.close()
        if os.path.isdir("/dev/shm"):
            assert not (names & set(os.listdir("/dev/shm")))

    def test_close_is_idempotent_and_publish_after_close_raises(self):
        store = SharedMemoryStore()
        store.publish("k", np.arange(4))
        store.close()
        store.close()
        with pytest.raises(RuntimeError):
            store.publish("k2", np.arange(4))

    def test_unpublish_unlinks_one_segment(self):
        with SharedMemoryStore() as store:
            store.publish("keep", np.arange(32))
            ref = store.publish("evict", np.arange(32))
            store.unpublish("evict")
            assert store.keys() == ["keep"]
            if os.path.isdir("/dev/shm"):
                assert ref.name not in os.listdir("/dev/shm")
            # Idempotent: unknown/already-evicted keys are ignored.
            store.unpublish("evict")
            store.unpublish("never-published")
            # A fresh publish under the evicted key gets a new segment.
            fresh = store.publish("evict", np.arange(8))
            assert fresh.name != ref.name

    def test_unpublish_then_close_is_safe(self):
        store = SharedMemoryStore()
        store.publish("a", np.arange(8))
        store.publish("b", np.arange(8))
        store.unpublish("a")
        store.close()
        if os.path.isdir("/dev/shm"):
            assert not {f for f in os.listdir("/dev/shm") if f.startswith("repro-")}


class TestBackendUnpublish:
    """Eviction hooks: artifacts matched by identity drop their segments."""

    def test_sharded_unpublish_drops_table_and_filter_segments(self):
        from repro.storage.schema import CategoricalAttribute, Schema
        from repro.storage.table import ColumnTable

        schema = Schema(
            (
                CategoricalAttribute("z", ("a", "b")),
                CategoricalAttribute("x", ("u", "v")),
            )
        )
        table = ColumnTable(
            schema,
            {"z": np.zeros(64, dtype=np.int64), "x": np.ones(64, dtype=np.int64)},
        )
        other = ColumnTable(
            schema,
            {"z": np.ones(64, dtype=np.int64), "x": np.zeros(64, dtype=np.int64)},
        )
        row_filter = np.ones(64, dtype=bool)
        backend = ShardedBackend(1, min_shard_rows=0)
        try:
            # Publish under the exact keys the counting paths use.
            backend.store.publish(("column", id(table), "z"), table.column("z"))
            backend.store.publish(("column", id(table), "x"), table.column("x"))
            backend.store.publish(("column", id(other), "z"), other.column("z"))
            backend.store.publish(("filter", id(row_filter)), row_filter)
            backend._pinned_tables[id(table)] = table
            backend._pinned_tables[id(other)] = other
            backend.unpublish(table, row_filter)
            remaining = backend.store.keys()
            assert remaining == [("column", id(other), "z")]
            assert id(table) not in backend._pinned_tables
            assert id(other) in backend._pinned_tables
            # Unknown artifacts and repeats are no-ops.
            backend.unpublish(table, None)
        finally:
            backend.close()

    def test_serial_unpublish_is_a_noop(self):
        SerialBackend().unpublish(object(), None)


# ---------------------------------------------------------------------------
# Counting kernel
# ---------------------------------------------------------------------------


class TestCountShard:
    def test_matches_direct_bincount(self):
        rng = np.random.default_rng(3)
        n, c, g = 1000, 7, 5
        z = rng.integers(0, c, n).astype(np.uint8)
        x = rng.integers(0, g, n).astype(np.uint8)
        layout = BlockLayout(n, 32)
        blocks = np.arange(layout.num_blocks, dtype=np.int64)
        counts = count_shard(z, x, blocks, layout, c, g)
        expected = np.bincount(
            z.astype(np.int64) * g + x, minlength=c * g
        ).reshape(c, g)
        np.testing.assert_array_equal(counts, expected)
        assert counts.dtype == np.int64

    def test_respects_row_filter_and_partial_blocks(self):
        rng = np.random.default_rng(4)
        n, c, g = 517, 4, 3  # short final block
        z = rng.integers(0, c, n)
        x = rng.integers(0, g, n)
        keep = rng.random(n) < 0.5
        layout = BlockLayout(n, 64)
        blocks = np.array([0, 2, layout.num_blocks - 1], dtype=np.int64)
        counts = count_shard(z, x, blocks, layout, c, g, row_filter=keep)
        rows = layout.rows_of_blocks(blocks)
        kept = rows[keep[rows]]
        expected = np.bincount(
            z[kept] * g + x[kept], minlength=c * g
        ).reshape(c, g)
        np.testing.assert_array_equal(counts, expected)


# ---------------------------------------------------------------------------
# ShardMerger
# ---------------------------------------------------------------------------


class TestShardMerger:
    def test_merge_sums_exactly(self):
        a = np.arange(6, dtype=np.int64).reshape(2, 3)
        b = np.ones((2, 3), dtype=np.int64)
        merged = ShardMerger(2, 3).merge(
            [
                ShardResult(task_id=0, counts=a, rows=int(a.sum())),
                ShardResult(task_id=1, counts=b, rows=int(b.sum())),
            ]
        )
        np.testing.assert_array_equal(merged, a + b)

    def test_merge_rejects_shape_mismatch(self):
        bad = ShardResult(task_id=0, counts=np.zeros((3, 3), dtype=np.int64), rows=0)
        with pytest.raises(ValueError):
            ShardMerger(2, 3).merge([bad])

    def test_merge_rejects_float_counts(self):
        bad = ShardResult(task_id=0, counts=np.zeros((2, 3)), rows=0)
        with pytest.raises(ValueError):
            ShardMerger(2, 3).merge([bad])

    def test_merge_rejects_inconsistent_rows_tally(self):
        bad = ShardResult(
            task_id=0, counts=np.ones((2, 3), dtype=np.int64), rows=5
        )
        with pytest.raises(ValueError):
            ShardMerger(2, 3).merge([bad])


# ---------------------------------------------------------------------------
# WorkerPool
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def pool():
    p = WorkerPool(2)
    yield p
    p.close()


def make_tasks(store: SharedMemoryStore, n: int, c: int, g: int, n_shards: int):
    """Random (z, x) data published to shm + one task per planner shard."""
    rng = np.random.default_rng(11)
    z = rng.integers(0, c, n).astype(np.uint8)
    x = rng.integers(0, g, n).astype(np.uint8)
    layout = BlockLayout(n, 32)
    z_ref = store.publish("z", z)
    x_ref = store.publish("x", x)
    blocks = np.arange(layout.num_blocks, dtype=np.int64)
    shards = ShardPlanner(n_shards).plan(blocks, layout)
    tasks = [
        ShardTask(
            task_id=s.index,
            blocks=s.blocks,
            z_ref=z_ref,
            x_ref=x_ref,
            filter_ref=None,
            block_size=layout.block_size,
            num_rows=layout.num_rows,
            num_candidates=c,
            num_groups=g,
        )
        for s in shards
    ]
    expected = np.bincount(z.astype(np.int64) * g + x, minlength=c * g).reshape(c, g)
    return tasks, expected


class TestWorkerPool:
    def test_run_counts_match_local(self, pool):
        with SharedMemoryStore() as store:
            tasks, expected = make_tasks(store, n=2048, c=6, g=4, n_shards=2)
            results = pool.run(tasks)
            merged = ShardMerger(6, 4).merge(results)
            np.testing.assert_array_equal(merged, expected)
            assert pool.tasks_dispatched >= len(tasks)

    def test_task_failure_raises_with_context(self, pool):
        bad = ShardTask(
            task_id=0,
            blocks=np.array([0], dtype=np.int64),
            z_ref=SegmentRef(name="repro-definitely-missing", dtype="<i8", shape=(8,)),
            x_ref=SegmentRef(name="repro-definitely-missing", dtype="<i8", shape=(8,)),
            filter_ref=None,
            block_size=8,
            num_rows=8,
            num_candidates=2,
            num_groups=2,
        )
        with pytest.raises(RuntimeError, match="shard task"):
            pool.run([bad])

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            WorkerPool(0)

    def test_close_stops_workers(self):
        p = WorkerPool(1)
        assert p.alive_workers == 1
        p.close()
        assert p.alive_workers == 0
        p.close()  # idempotent
        with pytest.raises(RuntimeError):
            p.run([])

    def test_worker_death_poisons_pool(self):
        p = WorkerPool(1, result_timeout_s=0.2)
        try:
            p._workers[0].terminate()
            p._workers[0].join(timeout=5.0)
            with SharedMemoryStore() as store:
                tasks, _ = make_tasks(store, n=256, c=2, g=2, n_shards=1)
                with pytest.raises(RuntimeError, match="worker died"):
                    p.run(tasks)
            # The failed run closed the pool: no later run can merge
            # partial or stale results.
            assert p.closed
        finally:
            p.close()

    def test_rejects_duplicate_task_ids(self, pool):
        with SharedMemoryStore() as store:
            tasks, _ = make_tasks(store, n=256, c=2, g=2, n_shards=1)
            with pytest.raises(ValueError, match="unique"):
                pool.run([tasks[0], tasks[0]])


# ---------------------------------------------------------------------------
# make_backend factory
# ---------------------------------------------------------------------------


class TestMakeBackend:
    def test_serial_default(self):
        backend = make_backend()
        assert isinstance(backend, SerialBackend)
        assert backend.describe() == {"backend": "serial"}

    def test_sharded_with_workers(self):
        backend = make_backend("sharded", workers=3)
        try:
            assert isinstance(backend, ShardedBackend)
            assert backend.n_workers == 3
            assert backend.describe()["workers"] == 3
        finally:
            backend.close()

    def test_sharded_backend_respawns_a_dead_pool(self):
        backend = ShardedBackend(1, min_shard_rows=0)
        try:
            first = backend.pool
            first.close()  # as after a worker death mid-window
            replacement = backend.pool
            assert replacement is not first
            assert replacement.alive_workers == 1
        finally:
            backend.close()

    def test_existing_instance_passthrough(self):
        backend = SerialBackend()
        assert make_backend(backend) is backend
        with pytest.raises(ValueError):
            make_backend(backend, workers=2)

    def test_rejects_unknown_and_bad_args(self):
        with pytest.raises(ValueError):
            make_backend("distributed")
        with pytest.raises(ValueError):
            make_backend("serial", workers=2)


# ---------------------------------------------------------------------------
# Worker-side segment forgetting (epoch-based attachment GC)
# ---------------------------------------------------------------------------


def shm_free_bytes() -> int:
    """Free bytes on the /dev/shm tmpfs (0 where it does not exist)."""
    if not os.path.isdir("/dev/shm"):
        return 0
    stat = os.statvfs("/dev/shm")
    return stat.f_bavail * stat.f_frsize


class TestAttachmentGC:
    def test_gc_state_tracks_epoch_and_live_names(self):
        with SharedMemoryStore() as store:
            assert store.gc_state() == (0, ())
            a = store.publish("a", np.arange(8))
            b = store.publish("b", np.arange(8))
            epoch, live = store.gc_state()
            assert epoch == 0 and set(live) == {a.name, b.name}
            store.unpublish("a")
            epoch, live = store.gc_state()
            assert epoch == 1 and live == (b.name,)
            store.unpublish("a")  # idempotent: no epoch churn for no-ops
            assert store.gc_state()[0] == 1

    def test_worker_drops_stale_attachments_on_epoch_advance(self):
        """A single worker caches attachments across tasks, then forgets the
        ones a newer task's GC watermark no longer lists as live."""
        p = WorkerPool(1)
        try:
            with SharedMemoryStore() as store:
                tasks_a, _ = make_tasks(store, n=512, c=3, g=2, n_shards=1)
                epoch, live = store.gc_state()
                stamped_a = [
                    ShardTask(
                        **{
                            **{f: getattr(t, f) for f in ShardTask.__dataclass_fields__},
                            "gc_epoch": epoch,
                            "live_segments": live,
                        }
                    )
                    for t in tasks_a
                ]
                (res_a,) = p.run(stamped_a)
                assert res_a.cached_attachments == 2  # z + x of dataset A

                # A second dataset joins: the worker now caches 4 segments.
                z2 = np.arange(512, dtype=np.uint8) % 3
                x2 = np.arange(512, dtype=np.uint8) % 2
                z2_ref = store.publish("z2", z2)
                x2_ref = store.publish("x2", x2)
                layout = BlockLayout(512, 32)
                epoch, live = store.gc_state()
                task_b = ShardTask(
                    task_id=100,
                    blocks=np.arange(layout.num_blocks, dtype=np.int64),
                    z_ref=z2_ref,
                    x_ref=x2_ref,
                    filter_ref=None,
                    block_size=32,
                    num_rows=512,
                    num_candidates=3,
                    num_groups=2,
                    gc_epoch=epoch,
                    live_segments=live,
                )
                (res_b,) = p.run([task_b])
                assert res_b.cached_attachments == 4

                # Dataset A is evicted: the next watermark drops its two.
                store.unpublish("z")
                store.unpublish("x")
                epoch, live = store.gc_state()
                task_b2 = ShardTask(
                    **{
                        **{f: getattr(task_b, f) for f in ShardTask.__dataclass_fields__},
                        "task_id": 101,
                        "gc_epoch": epoch,
                        "live_segments": live,
                    }
                )
                (res_b2,) = p.run([task_b2])
                assert res_b2.cached_attachments == 2
                np.testing.assert_array_equal(res_b2.counts, res_b.counts)
        finally:
            p.close()

    @pytest.mark.skipif(
        not os.path.isdir("/dev/shm"), reason="/dev/shm tmpfs required"
    )
    def test_dev_shm_shrinks_after_lru_eviction_with_live_pool(self):
        """Regression: evicting a prepared query must actually free its
        shared-memory pages while the worker pool keeps running.

        Before epoch GC, workers cached attachments until shutdown, so an
        unlinked segment's pages stayed pinned; now the first post-eviction
        task makes the worker close them.
        """
        from repro.core.config import HistSimConfig
        from repro.core.target import TargetSpec
        from repro.query import HistogramQuery
        from repro.storage.schema import CategoricalAttribute, Schema
        from repro.storage.table import ColumnTable
        from repro.system import MatchSession

        rng = np.random.default_rng(5)
        n = 200_000
        z = rng.integers(0, 8, n)
        x = rng.integers(0, 4, n)
        schema = Schema(
            (
                CategoricalAttribute("z", tuple(f"c{i}" for i in range(8))),
                CategoricalAttribute("x", tuple(f"g{i}" for i in range(4))),
            )
        )
        table = ColumnTable(schema, {"z": z, "x": x})
        query = HistogramQuery(
            "z", "x", target=TargetSpec(kind="closest_to_uniform"), k=2, name="q"
        )
        config = HistSimConfig(k=2, epsilon=0.25, delta=0.05, sigma=0.0)

        backend = ShardedBackend(1, min_shard_rows=0)
        session = MatchSession(
            table, backend=backend, max_cached_queries=1, audit=False
        )
        try:
            session.submit(query, config=config, seed=0)
            session.run()
            prepared0 = session.prepared(query, seed=0)  # cache hit, no work
            evicted_bytes = (
                prepared0.shuffled.table.column("z").nbytes
                + prepared0.shuffled.table.column("x").nbytes
            )
            old_names = set(backend.store.segment_names())
            free_before = shm_free_bytes()

            # Preparing a second seed evicts seed 0 (unlink; worker still
            # pins the pages) and the subsequent run's first pooled window
            # carries the new epoch, making the worker let go.
            session.submit(query, config=config, seed=1)
            session.run()
            free_after = shm_free_bytes()

            assert backend.store.epoch > 0
            assert not (old_names & set(os.listdir("/dev/shm")))
            assert backend.pool.alive_workers == 1  # pool never restarted
            # Seed 1's columns were published (− evicted_bytes) AND seed 0's
            # pages were released (+ evicted_bytes): net /dev/shm usage must
            # not grow by another dataset's worth, which it did before GC.
            assert free_after >= free_before - 0.5 * evicted_bytes
        finally:
            session.close()


# ---------------------------------------------------------------------------
# ThreadPoolBackend
# ---------------------------------------------------------------------------


def fake_table(n: int, c: int, g: int, seed: int):
    """Column-access duck: the whole surface count_table touches."""
    from types import SimpleNamespace

    rng = np.random.default_rng(seed)
    columns = {
        "z": rng.integers(0, c, n).astype(np.int64),
        "x": rng.integers(0, g, n).astype(np.int64),
    }
    return SimpleNamespace(num_rows=n, column=columns.__getitem__)


class TestThreadPoolBackend:
    def test_count_table_matches_serial(self):
        from repro.parallel import ThreadPoolBackend

        table = fake_table(5000, 6, 4, seed=7)
        keep = np.random.default_rng(8).random(5000) < 0.5
        serial = SerialBackend().count_table(table, "z", "x", 6, 4, keep)
        backend = ThreadPoolBackend(3, min_shard_rows=0)
        try:
            counts = backend.count_table(table, "z", "x", 6, 4, keep)
            np.testing.assert_array_equal(counts, serial)
            assert backend.shard_tasks > 0  # really went through the executor
        finally:
            backend.close()

    def test_small_tables_stay_inline(self):
        from repro.parallel import ThreadPoolBackend

        table = fake_table(256, 4, 3, seed=9)
        serial = SerialBackend().count_table(table, "z", "x", 4, 3)
        backend = ThreadPoolBackend(2)  # default min_shard_rows threshold
        try:
            counts = backend.count_table(table, "z", "x", 4, 3)
            np.testing.assert_array_equal(counts, serial)
            assert backend.shard_tasks == 0
            assert backend._executor is None  # never even spun up
        finally:
            backend.close()

    def test_concurrent_count_calls_are_safe(self):
        """Steps of different sessions hit one shared backend concurrently;
        every caller must get its own exact counts."""
        import threading

        from repro.parallel import ThreadPoolBackend

        tables = [fake_table(4000, 5, 3, seed=20 + i) for i in range(4)]
        expected = [
            SerialBackend().count_table(t, "z", "x", 5, 3) for t in tables
        ]
        backend = ThreadPoolBackend(2, min_shard_rows=0)
        results = [None] * len(tables)
        errors = []
        barrier = threading.Barrier(len(tables))

        def worker(i):
            try:
                barrier.wait(timeout=10)
                for _ in range(5):
                    results[i] = backend.count_table(tables[i], "z", "x", 5, 3)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(len(tables))
        ]
        try:
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60)
        finally:
            backend.close()
        assert not errors
        for got, want in zip(results, expected):
            np.testing.assert_array_equal(got, want)

    def test_describe_close_and_validation(self):
        from repro.parallel import ThreadPoolBackend

        backend = ThreadPoolBackend(2, min_shard_rows=0)
        desc = backend.describe()
        assert desc["backend"] == "threads"
        assert desc["workers"] == 2
        backend.close()
        backend.close()  # idempotent
        with pytest.raises(RuntimeError, match="closed"):
            backend.executor
        with pytest.raises(ValueError):
            ThreadPoolBackend(0)
        with pytest.raises(ValueError):
            ThreadPoolBackend(2, min_shard_rows=-1)

    def test_make_backend_threads(self):
        from repro.parallel import ThreadPoolBackend

        backend = make_backend("threads", workers=3)
        try:
            assert isinstance(backend, ThreadPoolBackend)
            assert backend.describe()["workers"] == 3
        finally:
            backend.close()


# ---------------------------------------------------------------------------
# WorkerPool under concurrent run() callers
# ---------------------------------------------------------------------------


def make_tagged_tasks(store, tag, base_id, n, c, g, n_shards, seed):
    """Like make_tasks, but with caller-unique shm keys and task ids."""
    rng = np.random.default_rng(seed)
    z = rng.integers(0, c, n).astype(np.uint8)
    x = rng.integers(0, g, n).astype(np.uint8)
    layout = BlockLayout(n, 32)
    z_ref = store.publish(f"{tag}-z", z)
    x_ref = store.publish(f"{tag}-x", x)
    blocks = np.arange(layout.num_blocks, dtype=np.int64)
    shards = ShardPlanner(n_shards).plan(blocks, layout)
    tasks = [
        ShardTask(
            task_id=base_id + s.index,
            blocks=s.blocks,
            z_ref=z_ref,
            x_ref=x_ref,
            filter_ref=None,
            block_size=layout.block_size,
            num_rows=layout.num_rows,
            num_candidates=c,
            num_groups=g,
        )
        for s in shards
    ]
    expected = np.bincount(z.astype(np.int64) * g + x, minlength=c * g).reshape(c, g)
    return tasks, expected


class TestWorkerPoolConcurrentRuns:
    def test_interleaved_runs_never_cross_settle(self, pool):
        """Two threads drive overlapping run() windows through one pool;
        each caller must gather exactly its own shard results (the
        single-drainer deposit protocol), every time."""
        import threading

        with SharedMemoryStore() as store:
            jobs = [
                make_tagged_tasks(
                    store, tag=f"c{i}", base_id=1000 * (i + 1),
                    n=2048 + 256 * i, c=5, g=3, n_shards=2, seed=30 + i,
                )
                for i in range(2)
            ]
            errors = []
            barrier = threading.Barrier(len(jobs))

            def caller(i):
                tasks, expected = jobs[i]
                try:
                    barrier.wait(timeout=10)
                    for _ in range(8):
                        merged = ShardMerger(5, 3).merge(pool.run(tasks))
                        np.testing.assert_array_equal(merged, expected)
                except Exception as exc:
                    errors.append((i, exc))

            threads = [
                threading.Thread(target=caller, args=(i,))
                for i in range(len(jobs))
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)
            assert not errors, errors
