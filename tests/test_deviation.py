"""Tests for Theorem 1's concentration bound and Eq. 1 budgets."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.deviation import (
    deviation_log_pvalue,
    deviation_pvalue,
    epsilon_given_samples,
    samples_for_deviation,
    stage2_sample_budget,
    stage3_sample_target,
)


class TestEpsilonGivenSamples:
    def test_known_value(self):
        # eps = sqrt(2/n (v ln2 + ln(1/delta)))
        n, delta, v = 1000, 0.1, 8
        expected = np.sqrt(2.0 / n * (v * np.log(2) + np.log(10.0)))
        assert epsilon_given_samples(n, delta, v) == pytest.approx(expected)

    def test_zero_samples_is_infinite(self):
        assert epsilon_given_samples(0, 0.1, 4) == np.inf

    def test_vectorized(self):
        out = epsilon_given_samples(np.array([0, 10, 1000]), 0.05, 4)
        assert out.shape == (3,)
        assert out[0] == np.inf
        assert out[1] > out[2]

    def test_monotone_decreasing_in_n(self):
        v, delta = 24, 0.01
        eps = epsilon_given_samples(np.arange(1, 500), delta, v)
        assert np.all(np.diff(eps) < 0)

    def test_invalid_delta(self):
        with pytest.raises(ValueError):
            epsilon_given_samples(10, 0.0, 4)
        with pytest.raises(ValueError):
            epsilon_given_samples(10, 1.0, 4)

    def test_invalid_support(self):
        with pytest.raises(ValueError):
            epsilon_given_samples(10, 0.1, 0)


class TestSamplesForDeviation:
    def test_roundtrip_with_epsilon(self):
        """n(ε, δ) samples must guarantee deviation at most ε."""
        for v in (2, 24, 351):
            for eps in (0.02, 0.04, 0.11):
                n = samples_for_deviation(eps, 0.01, v)
                assert epsilon_given_samples(n, 0.01, v) <= eps + 1e-12
                # And one fewer sample is not quite enough (ceil tightness).
                assert epsilon_given_samples(n - 1, 0.01, v) > eps - 1e-3

    def test_scales_inverse_square_epsilon(self):
        n1 = samples_for_deviation(0.02, 0.01, 24)
        n2 = samples_for_deviation(0.04, 0.01, 24)
        assert n1 == pytest.approx(4 * n2, rel=0.01)

    def test_scales_linearly_in_support(self):
        n1 = samples_for_deviation(0.04, 0.01, 100)
        n2 = samples_for_deviation(0.04, 0.01, 200)
        assert n2 / n1 == pytest.approx(2.0, rel=0.15)

    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            samples_for_deviation(0.0, 0.1, 4)


class TestDeviationPvalue:
    def test_matches_direct_formula_small_support(self):
        eps, n, v = 0.1, 500, 8
        direct = (2.0**v) * np.exp(-(eps**2) * n / 2.0)
        assert deviation_pvalue(eps, n, v) == pytest.approx(min(1.0, direct))

    def test_no_overflow_large_support(self):
        """2^351 overflows float64; log-space computation must survive."""
        out = deviation_log_pvalue(0.04, 10, 351)
        assert np.isfinite(out)
        assert out > 0.0 - 1e-9  # clamped at ln 1 = 0 (not rejectable yet)

    def test_large_support_eventually_rejects(self):
        v = 351
        n = samples_for_deviation(0.04, 1e-6, v)
        assert deviation_log_pvalue(0.04, n, v) <= np.log(1e-6) + 1e-9

    def test_nonpositive_epsilon_gives_pvalue_one(self):
        assert deviation_pvalue(-0.5, 100, 4) == pytest.approx(1.0)
        assert deviation_pvalue(0.0, 100, 4) == pytest.approx(1.0)

    def test_infinite_epsilon_gives_pvalue_zero(self):
        assert deviation_pvalue(np.inf, 100, 4) == pytest.approx(0.0)
        assert deviation_pvalue(np.inf, 0, 4) == pytest.approx(0.0)

    def test_zero_samples_gives_pvalue_one(self):
        assert deviation_pvalue(0.3, 0, 4) == pytest.approx(1.0)

    def test_clamped_at_one(self):
        assert deviation_pvalue(1e-6, 1, 24) == pytest.approx(1.0)

    @given(
        st.floats(min_value=1e-3, max_value=1.9),
        st.integers(min_value=1, max_value=10_000),
        st.integers(min_value=1, max_value=512),
    )
    @settings(max_examples=100)
    def test_consistency_with_epsilon_inverse(self, eps, n, v):
        """P-value at ε(n, δ) must be at most δ."""
        delta = 0.05
        eps_bound = epsilon_given_samples(n, delta, v)
        if np.isfinite(eps_bound):
            assert deviation_pvalue(eps_bound, n, v) <= delta * (1 + 1e-9)

    @given(
        st.integers(min_value=1, max_value=100_000),
        st.integers(min_value=1, max_value=400),
    )
    @settings(max_examples=100)
    def test_monotone_in_epsilon(self, n, v):
        eps_grid = np.linspace(0.01, 1.9, 16)
        p = deviation_log_pvalue(eps_grid, n, v)
        assert np.all(np.diff(p) <= 1e-12)


class TestStage2Budget:
    def test_matches_equation_one(self):
        eps_prime, delta_upper, v = 0.05, 0.001, 24
        expected = np.ceil(2 * (v * np.log(2) - np.log(delta_upper)) / eps_prime**2)
        out = stage2_sample_budget(np.array([eps_prime]), delta_upper, v)
        assert out[0] == pytest.approx(expected)

    def test_budget_suffices_for_rejection(self):
        """Taking n'_i samples and observing margin ε'_i must reject at δ_upper."""
        eps_prime, delta_upper, v = 0.07, 1e-4, 24
        n = stage2_sample_budget(np.array([eps_prime]), delta_upper, v)[0]
        assert deviation_pvalue(eps_prime, n, v) <= delta_upper * (1 + 1e-9)

    def test_nonpositive_margin_infinite(self):
        out = stage2_sample_budget(np.array([0.0, -1.0, 0.1]), 0.01, 4)
        assert out[0] == np.inf and out[1] == np.inf and np.isfinite(out[2])

    def test_smaller_delta_upper_needs_more(self):
        a = stage2_sample_budget(np.array([0.05]), 0.01, 24)[0]
        b = stage2_sample_budget(np.array([0.05]), 0.0001, 24)[0]
        assert b > a


class TestStage3Target:
    def test_matches_line_26(self):
        eps, delta, k, v = 0.04, 0.01, 10, 24
        expected = np.ceil(2 / eps**2 * (v * np.log(2) + np.log(3 * k / delta)))
        assert stage3_sample_target(eps, delta, k, v) == expected

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            stage3_sample_target(0.04, 0.01, 0, 24)
