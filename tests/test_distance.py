"""Unit and property tests for repro.core.distance (paper Definition 2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.distance import (
    candidate_distances,
    kl_divergence,
    l1_distance,
    l2_distance,
    normalize,
    total_variation,
)

histograms = hnp.arrays(
    dtype=np.float64,
    shape=st.shared(st.integers(min_value=1, max_value=24), key="support"),
    elements=st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
)


def nonzero(h):
    return h.sum() > 0


class TestNormalize:
    def test_sums_to_one(self):
        out = normalize(np.array([2.0, 3.0, 5.0]))
        assert out.sum() == pytest.approx(1.0)
        np.testing.assert_allclose(out, [0.2, 0.3, 0.5])

    def test_zero_vector_stays_zero(self):
        np.testing.assert_array_equal(normalize(np.zeros(4)), np.zeros(4))

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            normalize(np.array([1.0, -1.0]))

    def test_rejects_scalar(self):
        with pytest.raises(ValueError):
            normalize(np.float64(3.0))

    def test_matrix_rows_normalized_independently(self):
        m = np.array([[1.0, 1.0], [3.0, 1.0], [0.0, 0.0]])
        out = normalize(m)
        np.testing.assert_allclose(out[0], [0.5, 0.5])
        np.testing.assert_allclose(out[1], [0.75, 0.25])
        np.testing.assert_allclose(out[2], [0.0, 0.0])


class TestL1Distance:
    def test_identical_histograms_distance_zero(self):
        h = np.array([5.0, 2.0, 3.0])
        assert l1_distance(h, h) == pytest.approx(0.0)

    def test_scaling_invariance(self):
        """Figure 3's point: scaled copies are identical post-normalization."""
        h = np.array([5.0, 2.0, 3.0])
        assert l1_distance(h, 1000 * h) == pytest.approx(0.0)

    def test_disjoint_support_is_two(self):
        assert l1_distance(np.array([1.0, 0.0]), np.array([0.0, 1.0])) == pytest.approx(2.0)

    def test_known_value(self):
        assert l1_distance(np.array([1.0, 1.0]), np.array([1.0, 3.0])) == pytest.approx(0.5)

    def test_mismatched_support_raises(self):
        with pytest.raises(ValueError):
            l1_distance(np.ones(3), np.ones(4))

    @given(histograms.filter(nonzero), histograms.filter(nonzero))
    @settings(max_examples=80)
    def test_symmetry(self, a, b):
        assert l1_distance(a, b) == pytest.approx(l1_distance(b, a))

    @given(histograms.filter(nonzero), histograms.filter(nonzero))
    @settings(max_examples=80)
    def test_range(self, a, b):
        d = l1_distance(a, b)
        assert 0.0 <= d <= 2.0 + 1e-12

    @given(
        histograms.filter(nonzero), histograms.filter(nonzero), histograms.filter(nonzero)
    )
    @settings(max_examples=80)
    def test_triangle_inequality(self, a, b, c):
        assert l1_distance(a, c) <= l1_distance(a, b) + l1_distance(b, c) + 1e-9

    @given(histograms.filter(nonzero), histograms.filter(nonzero))
    @settings(max_examples=80)
    def test_l1_dominates_l2(self, a, b):
        assert l2_distance(a, b) <= l1_distance(a, b) + 1e-9


class TestOtherMetrics:
    def test_total_variation_is_half_l1(self):
        a, b = np.array([1.0, 3.0]), np.array([2.0, 2.0])
        assert total_variation(a, b) == pytest.approx(0.5 * l1_distance(a, b))

    def test_l2_known_value(self):
        d = l2_distance(np.array([1.0, 0.0]), np.array([0.0, 1.0]))
        assert d == pytest.approx(np.sqrt(2.0))

    def test_kl_infinite_on_support_mismatch(self):
        """Section 2.1's objection to KL as a matching metric."""
        assert kl_divergence(np.array([1.0, 1.0]), np.array([1.0, 0.0])) == np.inf

    def test_kl_zero_for_identical(self):
        h = np.array([2.0, 5.0, 3.0])
        assert kl_divergence(h, h) == pytest.approx(0.0)

    def test_kl_known_value(self):
        p, q = np.array([1.0, 1.0]), np.array([1.0, 3.0])
        expected = 0.5 * np.log(0.5 / 0.25) + 0.5 * np.log(0.5 / 0.75)
        assert kl_divergence(p, q) == pytest.approx(expected)

    def test_l2_insensitive_to_disjoint_spread(self):
        """Section 2.1: L2 can be small for disjoint-support distributions."""
        n = 100
        p = np.zeros(2 * n)
        q = np.zeros(2 * n)
        p[:n] = 1.0 / n
        q[n:] = 1.0 / n
        assert l1_distance(p, q) == pytest.approx(2.0)
        assert l2_distance(p, q) < 0.2


class TestCandidateDistances:
    def test_matches_scalar_function(self):
        rng = np.random.default_rng(0)
        counts = rng.integers(0, 50, size=(8, 5)).astype(float)
        counts[3] = 0  # empty candidate
        target = rng.integers(1, 50, size=5).astype(float)
        vec = candidate_distances(counts, target)
        for i in range(8):
            assert vec[i] == pytest.approx(l1_distance(counts[i], target))

    def test_empty_candidate_distance_is_one_for_proper_target(self):
        counts = np.zeros((1, 4))
        target = np.ones(4)
        assert candidate_distances(counts, target)[0] == pytest.approx(1.0)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            candidate_distances(np.ones(3), np.ones(3))
        with pytest.raises(ValueError):
            candidate_distances(np.ones((2, 3)), np.ones(4))
