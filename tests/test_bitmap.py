"""Tests for bitmap indexes and density maps against brute-force truth."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitmap import BlockBitmapIndex, DensityMap, build_bitmap_index, build_density_map
from repro.storage import CategoricalAttribute, ColumnTable, Schema, shuffle_table


def brute_force_presence(column, cardinality, block_size):
    n = column.size
    num_blocks = -(-n // block_size)
    presence = np.zeros((cardinality, num_blocks), dtype=bool)
    for b in range(num_blocks):
        vals = column[b * block_size : (b + 1) * block_size]
        presence[np.unique(vals), b] = True
    return presence


@pytest.fixture
def column():
    rng = np.random.default_rng(17)
    return rng.integers(0, 11, size=1003)


class TestBlockBitmapIndex:
    def test_matches_brute_force(self, column):
        idx = BlockBitmapIndex.build(column, 11, block_size=64)
        truth = brute_force_presence(column, 11, 64)
        for v in range(11):
            np.testing.assert_array_equal(idx.blocks_with_value(v), truth[v])

    def test_contains_single_probe(self, column):
        idx = BlockBitmapIndex.build(column, 11, block_size=64)
        truth = brute_force_presence(column, 11, 64)
        for v in (0, 5, 10):
            for b in (0, 7, idx.num_blocks - 1):
                assert idx.contains(v, b) == truth[v, b]

    def test_chunk_presence_window(self, column):
        idx = BlockBitmapIndex.build(column, 11, block_size=64)
        truth = brute_force_presence(column, 11, 64)
        values = np.array([2, 9, 4])
        window = idx.chunk_presence(values, 3, 13)
        np.testing.assert_array_equal(window, truth[values][:, 3:13])

    def test_chunk_presence_unaligned_window(self, column):
        """Windows not starting on a byte boundary must still be exact."""
        idx = BlockBitmapIndex.build(column, 11, block_size=64)
        truth = brute_force_presence(column, 11, 64)
        window = idx.chunk_presence(np.array([1]), 5, 6)
        np.testing.assert_array_equal(window, truth[[1]][:, 5:6])

    def test_first_present_models_early_exit(self, column):
        idx = BlockBitmapIndex.build(column, 11, block_size=64)
        truth = brute_force_presence(column, 11, 64)
        values = np.array([7, 0, 3])
        first = idx.first_present(values, 0, idx.num_blocks)
        for b in range(idx.num_blocks):
            present = [r for r, v in enumerate(values) if truth[v, b]]
            expected = present[0] if present else len(values)
            assert first[b] == expected

    def test_empty_values(self, column):
        idx = BlockBitmapIndex.build(column, 11, block_size=64)
        first = idx.first_present(np.array([], dtype=int), 0, 4)
        np.testing.assert_array_equal(first, [0, 0, 0, 0])

    def test_validation(self, column):
        idx = BlockBitmapIndex.build(column, 11, block_size=64)
        with pytest.raises(ValueError):
            idx.contains(11, 0)
        with pytest.raises(ValueError):
            idx.contains(0, idx.num_blocks)
        with pytest.raises(ValueError):
            idx.chunk_presence(np.array([0]), 5, 3)
        with pytest.raises(ValueError):
            BlockBitmapIndex.build(np.array([11]), 11, 4)

    def test_nbytes_one_bit_per_block_per_value(self):
        col = np.zeros(6400, dtype=int)
        idx = BlockBitmapIndex.build(col, 16, block_size=1)  # 6400 blocks
        assert idx.nbytes == 16 * 800

    @given(
        st.integers(min_value=1, max_value=300),
        st.integers(min_value=1, max_value=12),
        st.integers(min_value=1, max_value=40),
        st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=60)
    def test_property_matches_brute_force(self, n, cardinality, block_size, seed):
        rng = np.random.default_rng(seed)
        col = rng.integers(0, cardinality, size=n)
        idx = BlockBitmapIndex.build(col, cardinality, block_size)
        truth = brute_force_presence(col, cardinality, block_size)
        got = idx.chunk_presence(np.arange(cardinality), 0, idx.num_blocks)
        np.testing.assert_array_equal(got, truth)


class TestDensityMap:
    def test_block_counts_match_brute_force(self, column):
        dm = DensityMap.build(column, 11, block_size=64)
        for b in (0, 3, dm.num_blocks - 1):
            vals, counts = dm.block_counts(b)
            chunk = column[b * 64 : (b + 1) * 64]
            expected = np.bincount(chunk, minlength=11)
            got = np.zeros(11, dtype=int)
            got[vals] = counts
            np.testing.assert_array_equal(got, expected)

    def test_tuples_matching_predicate_mask(self, column):
        dm = DensityMap.build(column, 11, block_size=64)
        mask = np.zeros(11, dtype=bool)
        mask[[2, 5]] = True
        got = dm.tuples_matching(mask, 2, 9)
        for i, b in enumerate(range(2, 9)):
            chunk = column[b * 64 : (b + 1) * 64]
            assert got[i] == np.isin(chunk, [2, 5]).sum()

    def test_value_totals(self, column):
        dm = DensityMap.build(column, 11, block_size=64)
        np.testing.assert_array_equal(dm.value_totals(), np.bincount(column, minlength=11))

    def test_empty_column(self):
        dm = DensityMap.build(np.array([], dtype=int), 5, 8)
        assert dm.num_blocks == 0
        np.testing.assert_array_equal(dm.value_totals(), np.zeros(5, dtype=int))

    def test_validation(self, column):
        dm = DensityMap.build(column, 11, block_size=64)
        with pytest.raises(ValueError):
            dm.block_counts(dm.num_blocks)
        with pytest.raises(ValueError):
            dm.tuples_matching(np.zeros(5, dtype=bool), 0, 1)

    @given(
        st.integers(min_value=1, max_value=200),
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=1, max_value=30),
        st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=60)
    def test_property_totals_preserved(self, n, cardinality, block_size, seed):
        rng = np.random.default_rng(seed)
        col = rng.integers(0, cardinality, size=n)
        dm = DensityMap.build(col, cardinality, block_size)
        np.testing.assert_array_equal(
            dm.value_totals(), np.bincount(col, minlength=cardinality)
        )
        full_mask = np.ones(cardinality, dtype=bool)
        per_block = dm.tuples_matching(full_mask, 0, dm.num_blocks)
        assert per_block.sum() == n


class TestBuilder:
    def test_build_from_shuffled_table(self):
        rng = np.random.default_rng(23)
        schema = Schema((CategoricalAttribute("z", tuple(f"v{i}" for i in range(5))),))
        table = ColumnTable(schema, {"z": rng.integers(0, 5, size=400)})
        shuffled = shuffle_table(table, block_size=32, rng=rng)
        idx = build_bitmap_index(shuffled, "z")
        dm = build_density_map(shuffled, "z")
        assert idx.num_blocks == shuffled.num_blocks == dm.num_blocks
        truth = brute_force_presence(shuffled.table.column("z"), 5, 32)
        got = idx.chunk_presence(np.arange(5), 0, idx.num_blocks)
        np.testing.assert_array_equal(got, truth)
