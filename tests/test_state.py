"""Tests for per-candidate state bookkeeping (paper Table 1 quantities)."""

import numpy as np
import pytest

from repro.core.state import CandidateState


def make_state(candidates=3, groups=4, rows=None):
    return CandidateState(candidates, groups, rows)


class TestConstruction:
    def test_initial_state_is_zero(self):
        s = make_state()
        assert s.samples.sum() == 0
        assert s.counts.sum() == 0
        assert s.round_samples.sum() == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            CandidateState(0, 4)
        with pytest.raises(ValueError):
            CandidateState(3, 0)
        with pytest.raises(ValueError):
            CandidateState(3, 4, np.array([1, 2]))
        with pytest.raises(ValueError):
            CandidateState(2, 4, np.array([1, -2]))


class TestRoundAccounting:
    def test_record_round_counts(self):
        s = make_state()
        fresh = np.zeros((3, 4), dtype=np.int64)
        fresh[0, 1] = 5
        fresh[2, 3] = 2
        s.record_round_counts(fresh)
        assert s.round_samples[0] == 5
        assert s.round_samples[2] == 2
        assert s.samples.sum() == 0  # cumulative untouched until fold

    def test_fold_moves_round_into_cumulative(self):
        s = make_state()
        fresh = np.ones((3, 4), dtype=np.int64)
        s.record_round_counts(fresh)
        s.fold_round_into_cumulative()
        assert s.samples.tolist() == [4, 4, 4]
        assert s.round_samples.sum() == 0
        np.testing.assert_array_equal(s.counts, fresh)

    def test_fresh_samples_independent_of_cumulative(self):
        """Round statistics must come from fresh samples only (Section 3.4)."""
        s = make_state()
        first = np.zeros((3, 4), dtype=np.int64)
        first[0, 0] = 100
        s.record_round_counts(first)
        s.fold_round_into_cumulative()
        second = np.zeros((3, 4), dtype=np.int64)
        second[0, 1] = 10
        s.record_round_counts(second)
        target = np.ones(4)
        round_tau = s.round_distances(target)
        # Round estimate is concentrated on group 1 despite cumulative history.
        expected = np.abs(np.array([0, 1, 0, 0]) - 0.25).sum()
        assert round_tau[0] == pytest.approx(expected)

    def test_record_validates_shape_and_sign(self):
        s = make_state()
        with pytest.raises(ValueError):
            s.record_round_counts(np.zeros((2, 4), dtype=np.int64))
        with pytest.raises(ValueError):
            s.record_round_counts(np.full((3, 4), -1))


class TestExhaustion:
    def test_exhausted_without_rows_is_never(self):
        s = make_state()
        assert not s.exhausted().any()

    def test_exhausted_tracks_row_budget(self):
        s = make_state(rows=np.array([4, 100, 0]))
        fresh = np.zeros((3, 4), dtype=np.int64)
        fresh[0] = 1  # 4 samples for candidate 0
        s.record_round_counts(fresh)
        s.fold_round_into_cumulative()
        exhausted = s.exhausted()
        assert exhausted[0]
        assert not exhausted[1]
        assert exhausted[2]  # zero-row candidate is trivially exhausted

    def test_round_exhausted_counts_pending_round(self):
        s = make_state(rows=np.array([4, 100, 0]))
        fresh = np.zeros((3, 4), dtype=np.int64)
        fresh[0] = 1
        s.record_round_counts(fresh)
        assert s.round_exhausted()[0]
        assert not s.exhausted()[0]


class TestDistances:
    def test_distances_match_definition(self):
        s = make_state(candidates=2, groups=2)
        s.counts[0] = [10, 10]
        s.counts[1] = [20, 0]
        target = np.array([1.0, 1.0])
        tau = s.distances(target)
        assert tau[0] == pytest.approx(0.0)
        assert tau[1] == pytest.approx(1.0)
