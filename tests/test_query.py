"""Tests for query templates, predicates, binning, and the exact executor."""

import numpy as np
import pytest

from repro.core.target import TargetSpec
from repro.query import (
    And,
    Equals,
    HistogramQuery,
    InRange,
    IsIn,
    Not,
    Or,
    TruePredicate,
    coarsen,
    equal_width_bins,
    exact_candidate_counts,
    exact_histogram,
    quantile_bins,
)
from repro.storage import CategoricalAttribute, ColumnTable, Schema


@pytest.fixture
def table():
    rng = np.random.default_rng(7)
    schema = Schema(
        (
            CategoricalAttribute("country", tuple(f"c{i}" for i in range(6))),
            CategoricalAttribute("bracket", tuple(f"b{i}" for i in range(4))),
            CategoricalAttribute("gender", ("f", "m")),
        )
    )
    n = 5000
    return ColumnTable(
        schema,
        {
            "country": rng.integers(0, 6, size=n),
            "bracket": rng.integers(0, 4, size=n),
            "gender": rng.integers(0, 2, size=n),
        },
    )


class TestPredicates:
    def test_true_predicate(self, table):
        assert TruePredicate().mask(table).all()

    def test_equals(self, table):
        mask = Equals("gender", 1).mask(table)
        np.testing.assert_array_equal(mask, table.column("gender") == 1)

    def test_equals_range_check(self, table):
        with pytest.raises(ValueError):
            Equals("gender", 5).mask(table)

    def test_isin(self, table):
        mask = IsIn("country", (1, 4)).mask(table)
        expected = np.isin(table.column("country"), [1, 4])
        np.testing.assert_array_equal(mask, expected)

    def test_inrange(self, table):
        mask = InRange("bracket", 1, 2).mask(table)
        col = table.column("bracket")
        np.testing.assert_array_equal(mask, (col >= 1) & (col <= 2))

    def test_inrange_empty_rejected(self, table):
        with pytest.raises(ValueError):
            InRange("bracket", 3, 1).mask(table)

    def test_boolean_composition(self, table):
        p = (Equals("gender", 0) & IsIn("country", (0, 1))) | Not(
            InRange("bracket", 0, 2)
        )
        mask = p.mask(table)
        g, c, b = (table.column(n) for n in ("gender", "country", "bracket"))
        expected = ((g == 0) & np.isin(c, [0, 1])) | ~((b >= 0) & (b <= 2))
        np.testing.assert_array_equal(mask, expected)

    def test_operators_build_trees(self):
        p = Equals("a", 0) & Equals("b", 1)
        assert isinstance(p, And)
        q = Equals("a", 0) | Equals("b", 1)
        assert isinstance(q, Or)
        r = ~Equals("a", 0)
        assert isinstance(r, Not)


class TestHistogramQuery:
    def test_cardinalities(self, table):
        q = HistogramQuery("country", "bracket")
        assert q.cardinalities(table) == (6, 4)

    def test_same_attribute_rejected(self):
        with pytest.raises(ValueError):
            HistogramQuery("country", "country")

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            HistogramQuery("country", "bracket", k=0)

    def test_validate_against(self, table):
        q = HistogramQuery("country", "missing")
        with pytest.raises(ValueError):
            q.validate_against(table)


class TestExecutor:
    def test_counts_match_brute_force(self, table):
        q = HistogramQuery("country", "bracket")
        counts = exact_candidate_counts(table, q)
        c, b = table.column("country"), table.column("bracket")
        for zi in range(6):
            expected = np.bincount(b[c == zi], minlength=4)
            np.testing.assert_array_equal(counts[zi], expected)

    def test_counts_respect_predicate(self, table):
        q = HistogramQuery("country", "bracket", predicate=Equals("gender", 0))
        counts = exact_candidate_counts(table, q)
        c, b, g = (table.column(n) for n in ("country", "bracket", "gender"))
        keep = g == 0
        for zi in range(6):
            expected = np.bincount(b[keep & (c == zi)], minlength=4)
            np.testing.assert_array_equal(counts[zi], expected)

    def test_total_preserved(self, table):
        q = HistogramQuery("country", "bracket")
        assert exact_candidate_counts(table, q).sum() == len(table)

    def test_exact_histogram_single_candidate(self, table):
        q = HistogramQuery("country", "bracket")
        counts = exact_candidate_counts(table, q)
        np.testing.assert_array_equal(exact_histogram(table, q, 3), counts[3])
        with pytest.raises(ValueError):
            exact_histogram(table, q, 6)

    def test_sql_semantics_example(self):
        """The Definition 1 census example, verified row by row."""
        schema = Schema(
            (
                CategoricalAttribute("country", ("greece", "italy")),
                CategoricalAttribute("income", ("low", "mid", "high")),
            )
        )
        table = ColumnTable(
            schema,
            {
                "country": np.array([0, 0, 0, 1, 1, 1, 1]),
                "income": np.array([0, 0, 2, 0, 1, 1, 2]),
            },
        )
        q = HistogramQuery("country", "income")
        counts = exact_candidate_counts(table, q)
        np.testing.assert_array_equal(counts, [[2, 0, 1], [1, 2, 1]])


class TestBinning:
    def test_equal_width(self):
        attr = equal_width_bins("hour", 0, 24, 24)
        assert attr.cardinality == 24
        codes = attr.encode(np.array([0.0, 11.5, 23.999]))
        np.testing.assert_array_equal(codes, [0, 11, 23])

    def test_equal_width_validation(self):
        with pytest.raises(ValueError):
            equal_width_bins("x", 0, 24, 0)
        with pytest.raises(ValueError):
            equal_width_bins("x", 5, 5, 3)

    def test_quantile_bins_balance(self):
        rng = np.random.default_rng(3)
        values = rng.exponential(size=20_000)
        attr = quantile_bins("v", values, 10)
        codes = attr.encode(values)
        counts = np.bincount(codes, minlength=attr.cardinality)
        assert counts.min() > 0.5 * counts.max()

    def test_quantile_bins_validation(self):
        with pytest.raises(ValueError):
            quantile_bins("v", np.array([]), 4)
        with pytest.raises(ValueError):
            quantile_bins("v", np.ones(100), 4)  # degenerate data

    def test_coarsen_halves_bins(self):
        attr = equal_width_bins("hour", 0, 24, 24)
        coarse = coarsen(attr, 4)
        assert coarse.cardinality == 6
        assert coarse.edges[0] == 0 and coarse.edges[-1] == 24

    def test_coarsen_preserves_ordering(self):
        attr = equal_width_bins("hour", 0, 24, 24)
        coarse = coarsen(attr, 4)
        raw = np.array([0.5, 7.2, 23.9])
        fine = attr.encode(raw)
        merged = coarse.encode(raw)
        np.testing.assert_array_equal(merged, fine // 4)

    def test_coarsen_keeps_last_edge_on_uneven_factor(self):
        attr = equal_width_bins("x", 0, 10, 10)
        coarse = coarsen(attr, 3)
        assert coarse.edges[-1] == 10
