"""Tests for block-selection policies and the block sampling engine."""

import numpy as np
import pytest

from repro.bitmap import BlockBitmapIndex, build_bitmap_index
from repro.core.sampler import TupleSampler
from repro.sampling import (
    AnyActiveLookaheadPolicy,
    AnyActiveSyncPolicy,
    BlockSamplingEngine,
    ScanAllPolicy,
)
from repro.storage import (
    CategoricalAttribute,
    ColumnTable,
    CostModel,
    Schema,
    shuffle_table,
)
from repro.system import SimulatedClock


def make_world(n=6000, candidates=8, groups=4, block_size=50, seed=0):
    rng = np.random.default_rng(seed)
    schema = Schema(
        (
            CategoricalAttribute("z", tuple(f"z{i}" for i in range(candidates))),
            CategoricalAttribute("x", tuple(f"x{i}" for i in range(groups))),
        )
    )
    table = ColumnTable(
        schema,
        {
            "z": rng.integers(0, candidates, size=n),
            "x": rng.integers(0, groups, size=n),
        },
    )
    shuffled = shuffle_table(table, block_size, rng)
    index = build_bitmap_index(shuffled, "z")
    return shuffled, index


def make_engine(shuffled, index, policy, window=16, seed=1, row_filter=None):
    clock = SimulatedClock()
    engine = BlockSamplingEngine(
        shuffled=shuffled,
        candidate_attribute="z",
        grouping_attribute="x",
        index=index,
        cost_model=CostModel(),
        clock=clock,
        policy=policy,
        rng=np.random.default_rng(seed),
        window_blocks=window,
        row_filter=row_filter,
    )
    return engine, clock


class TestPolicies:
    def setup_method(self):
        self.shuffled, self.index = make_world()
        self.cm = CostModel()

    def test_scan_all_reads_everything_free(self):
        policy = ScanAllPolicy()
        blocks = np.arange(5, 25)
        d = policy.select(self.index, blocks, np.array([0, 1]), self.cm, True)
        assert d.read_mask.all()
        assert d.mark_cost_ns == 0.0
        assert d.overlaps_io

    def test_sync_reads_only_blocks_with_active(self):
        policy = AnyActiveSyncPolicy()
        active = np.array([3])
        blocks = np.arange(0, 40)
        d = policy.select(self.index, blocks, active, self.cm, True)
        expected = self.index.blocks_with_value(3)[blocks]
        np.testing.assert_array_equal(d.read_mask, expected)
        assert not d.overlaps_io
        assert d.probes > 0

    def test_sync_probe_count_models_early_exit(self):
        policy = AnyActiveSyncPolicy()
        active = np.array([0, 1, 2])
        blocks = np.arange(0, 10)
        d = policy.select(self.index, blocks, active, self.cm, True)
        expected_probes = 0
        for b in blocks:
            hits = [r for r, v in enumerate(active) if self.index.contains(int(v), int(b))]
            expected_probes += (hits[0] + 1) if hits else active.size
        assert d.probes == expected_probes

    def test_lookahead_same_reads_as_sync(self):
        blocks = np.arange(10, 60)
        active = np.array([2, 5])
        sync = AnyActiveSyncPolicy().select(self.index, blocks, active, self.cm, True)
        look = AnyActiveLookaheadPolicy().select(self.index, blocks, active, self.cm, True)
        np.testing.assert_array_equal(sync.read_mask, look.read_mask)
        assert look.overlaps_io

    def test_lookahead_cheaper_per_block_than_sync_probes(self):
        """The Algorithm 3 cache win: marking a batch costs far less than
        per-block probing for the same decision."""
        blocks = np.arange(0, 120)  # all blocks (world has 120)
        active = np.arange(8)
        sync = AnyActiveSyncPolicy().select(self.index, blocks, active, self.cm, False)
        look = AnyActiveLookaheadPolicy().select(self.index, blocks, active, self.cm, False)
        assert look.mark_cost_ns < sync.mark_cost_ns

    def test_empty_active_reads_nothing(self):
        for policy in (AnyActiveSyncPolicy(), AnyActiveLookaheadPolicy()):
            d = policy.select(
                self.index, np.arange(5), np.array([], dtype=int), self.cm, True
            )
            assert not d.read_mask.any()
            assert d.mark_cost_ns == 0.0


class TestEngineProtocol:
    def test_implements_tuple_sampler(self):
        shuffled, index = make_world()
        engine, _ = make_engine(shuffled, index, ScanAllPolicy())
        assert isinstance(engine, TupleSampler)
        assert engine.total_rows == 6000
        assert engine.num_candidates == 8
        assert engine.num_groups == 4
        np.testing.assert_array_equal(
            engine.candidate_rows(),
            np.bincount(shuffled.table.column("z"), minlength=8),
        )


class TestSampleUniform:
    def test_delivers_requested_rows(self):
        shuffled, index = make_world()
        engine, clock = make_engine(shuffled, index, ScanAllPolicy())
        counts = engine.sample_uniform(1000)
        # Block granularity: delivered rounds up to a whole block.
        assert 1000 <= counts.sum() <= 1000 + 50
        assert clock.elapsed_ns > 0
        assert clock.breakdown["io"] > 0

    def test_truncates_on_exhaustion(self):
        shuffled, index = make_world(n=500)
        engine, _ = make_engine(shuffled, index, ScanAllPolicy())
        counts = engine.sample_uniform(10_000)
        assert counts.sum() == 500
        assert engine.fully_scanned

    def test_uniformity_across_start_positions(self):
        """Counts delivered must track true proportions regardless of start."""
        shuffled, index = make_world(n=30_000, candidates=4, seed=3)
        totals = np.bincount(shuffled.table.column("z"), minlength=4)
        for seed in (0, 1, 2):
            engine, _ = make_engine(shuffled, index, ScanAllPolicy(), seed=seed)
            counts = engine.sample_uniform(6000).sum(axis=1)
            np.testing.assert_allclose(
                counts / counts.sum(), totals / totals.sum(), atol=0.03
            )


class TestSampleUntil:
    @pytest.mark.parametrize(
        "policy_cls", [ScanAllPolicy, AnyActiveSyncPolicy, AnyActiveLookaheadPolicy]
    )
    def test_meets_budgets(self, policy_cls):
        shuffled, index = make_world()
        engine, _ = make_engine(shuffled, index, policy_cls())
        needed = np.zeros(8)
        needed[2] = 200
        needed[5] = 100
        fresh = engine.sample_until(needed)
        rows = fresh.sum(axis=1)
        assert rows[2] >= 200
        assert rows[5] >= 100

    @pytest.mark.parametrize(
        "policy_cls", [ScanAllPolicy, AnyActiveSyncPolicy, AnyActiveLookaheadPolicy]
    )
    def test_budget_capped_by_remaining(self, policy_cls):
        shuffled, index = make_world(n=2000)
        engine, _ = make_engine(shuffled, index, policy_cls())
        totals = engine.candidate_rows()
        needed = np.zeros(8)
        needed[0] = np.inf
        fresh = engine.sample_until(needed)
        assert fresh[0].sum() == totals[0]

    def test_never_rereads_blocks(self):
        """Fresh samples must be fresh: rows delivered across calls never
        exceed the table size."""
        shuffled, index = make_world(n=3000)
        engine, _ = make_engine(shuffled, index, AnyActiveLookaheadPolicy())
        engine.sample_uniform(500)
        for _ in range(5):
            engine.sample_until(np.full(8, 200.0))
        assert engine.delivered_rows().sum() <= 3000

    def test_anyactive_skips_blocks_without_active(self):
        """A candidate confined to few blocks: AnyActive must skip the rest."""
        rng = np.random.default_rng(5)
        n = 8000
        z = rng.integers(1, 8, size=n)  # candidate 0 absent...
        z[:40] = 0  # ...except in the first 40 rows
        schema = Schema(
            (
                CategoricalAttribute("z", tuple(f"z{i}" for i in range(8))),
                CategoricalAttribute("x", ("a", "b")),
            )
        )
        table = ColumnTable(schema, {"z": z, "x": rng.integers(0, 2, size=n)})
        shuffled = shuffle_table(table, 50, rng)
        index = build_bitmap_index(shuffled, "z")
        engine, _ = make_engine(shuffled, index, AnyActiveLookaheadPolicy())
        needed = np.zeros(8)
        needed[0] = np.inf  # consume candidate 0 entirely
        fresh = engine.sample_until(needed)
        assert fresh[0].sum() == 40
        assert engine.counters.blocks_skipped > 0
        assert engine.counters.blocks_read < shuffled.num_blocks

    def test_sync_charges_serial_lookahead_charges_pipelined(self):
        shuffled, index = make_world()
        needed = np.full(8, 300.0)

        sync_engine, sync_clock = make_engine(shuffled, index, AnyActiveSyncPolicy())
        sync_engine.sample_until(needed)
        assert sync_clock.breakdown.get("mark", 0) > 0
        assert sync_clock.breakdown.get("overlap_hidden", 0) == 0

        look_engine, look_clock = make_engine(shuffled, index, AnyActiveLookaheadPolicy())
        look_engine.sample_until(needed)
        assert look_clock.breakdown.get("overlap_hidden", 0) > 0

    def test_row_filter_limits_delivery(self):
        shuffled, index = make_world(n=4000)
        x_col = shuffled.table.column("x")
        row_filter = x_col < 2  # keep about half the rows
        engine, _ = make_engine(
            shuffled, index, ScanAllPolicy(), row_filter=row_filter
        )
        fresh = engine.sample_until(np.full(8, np.inf))
        assert fresh.sum() == int(row_filter.sum())
        # Only surviving groups appear.
        assert fresh[:, 2:].sum() == 0

    def test_counts_join_z_and_x_correctly(self):
        shuffled, index = make_world(n=2000)
        engine, _ = make_engine(shuffled, index, ScanAllPolicy())
        fresh = engine.sample_until(np.full(8, np.inf))
        z, x = shuffled.table.column("z"), shuffled.table.column("x")
        expected = np.zeros((8, 4), dtype=np.int64)
        np.add.at(expected, (z, x), 1)
        np.testing.assert_array_equal(fresh, expected)

    def test_needed_shape_validated(self):
        shuffled, index = make_world()
        engine, _ = make_engine(shuffled, index, ScanAllPolicy())
        with pytest.raises(ValueError):
            engine.sample_until(np.zeros(3))
