"""Telemetry under concurrent step execution: nothing lost, nothing torn.

With ``max_concurrent_steps > 1`` settles land from executor threads, so
spans and metrics are recorded concurrently.  Across all three execution
backends this must hold:

- **no lost telemetry** — every request produces exactly one
  ``request.finalized`` event, and the ``engine.step`` span count equals
  the engine's own per-outcome step accounting;
- **no torn snapshots** — a thread hammering ``metrics.snapshot()`` and
  ``expose_text()`` mid-run only ever sees internally consistent views
  (status counts sum to the request total);
- **identity** — traced concurrent answers are byte-identical to the
  untraced serial reference (tracing observes, never steers).
"""

from __future__ import annotations

import asyncio
import threading

import numpy as np
import pytest

from repro import QueryRequest, SessionRegistry, match_histograms
from repro.core import HistSimConfig
from repro.core.target import TargetSpec
from repro.obs import Tracer
from repro.parallel import ShardedBackend, ThreadPoolBackend
from repro.query import HistogramQuery
from repro.storage import CategoricalAttribute, ColumnTable, Schema

EPS, DELTA = 0.2, 0.05
CANDIDATES, GROUPS = 12, 5
N_REQUESTS = 6


def make_table(seed: int = 31, n: int = 24_000) -> ColumnTable:
    rng = np.random.default_rng(seed)
    z = rng.integers(0, CANDIDATES, size=n)
    x = np.empty(n, dtype=np.int64)
    for c in range(CANDIDATES):
        mask = z == c
        base = np.full(GROUPS, 1.0 / GROUPS)
        if c >= 2:
            base[c % GROUPS] += 0.6
            base /= base.sum()
        x[mask] = rng.choice(GROUPS, size=int(mask.sum()), p=base)
    schema = Schema(
        (
            CategoricalAttribute("product", tuple(f"p{i}" for i in range(CANDIDATES))),
            CategoricalAttribute("age", tuple(f"a{i}" for i in range(GROUPS))),
        )
    )
    return ColumnTable(schema, {"product": z, "age": x})


@pytest.fixture(scope="module")
def table():
    return make_table()


@pytest.fixture(scope="module")
def references(table):
    return {
        k: match_histograms(
            table, "product", "age", k=k, epsilon=EPS, delta=DELTA, sigma=0.0,
            seed=3,
        )
        for k in (2, 3)
    }


def make_request(i: int) -> QueryRequest:
    k = 3 if i % 2 == 0 else 2
    query = HistogramQuery(
        "product", "age", target=TargetSpec(kind="closest_to_uniform"), k=k,
        name=f"r{i}",
    )
    config = HistSimConfig(k=k, epsilon=EPS, delta=DELTA, sigma=0.0)
    return QueryRequest(query, config=config, seed=3, name=f"r{i}", dataset="d")


def make_backend(spec: str):
    if spec == "serial":
        return "serial"
    if spec == "threads":
        return ThreadPoolBackend(2, min_shard_rows=0)
    return ShardedBackend(2, min_shard_rows=0)


def drive_concurrent(table, backend, tracer):
    """Serve N requests through a concurrent async registry door while a
    snapshot-hammering thread checks for torn reads.  Returns
    ``(outcomes, snapshots_checked)``."""
    registry = SessionRegistry(backend=backend, tracer=tracer)
    registry.add_dataset("d", table)
    door = registry.serve_async(policy="fifo", max_concurrent_steps=4)
    torn: list[str] = []
    checked = 0
    stop = threading.Event()

    def hammer():
        nonlocal checked
        while not stop.is_set():
            snap = door.metrics.snapshot()
            total = (
                snap.completed + snap.partial + snap.missed
                + snap.shed + snap.cancelled
            )
            if total != snap.requests:
                torn.append(f"status counts {total} != requests {snap.requests}")
            if snap.requests > N_REQUESTS:
                torn.append(f"overcounted: {snap.requests} > {N_REQUESTS}")
            text = door.metrics.expose_text()
            if "repro_requests_total" not in text:
                torn.append("exposition missing counters")
            checked += 1

    async def drive():
        async with door:
            handles = [
                await door.submit(make_request(i)) for i in range(N_REQUESTS)
            ]
            return [await handle.outcome() for handle in handles]

    reader = threading.Thread(target=hammer, daemon=True)
    reader.start()
    try:
        outcomes = asyncio.run(drive())
    finally:
        stop.set()
        reader.join(timeout=10)
    assert not torn, torn[:3]
    assert checked > 0
    return outcomes, checked


@pytest.mark.parametrize("backend_spec", ["serial", "threads", "sharded"])
def test_concurrent_telemetry_complete_and_identical(
    table, references, backend_spec
):
    backend = make_backend(backend_spec)
    tracer = Tracer()
    try:
        outcomes, _ = drive_concurrent(table, backend, tracer)
        if backend_spec != "serial":
            assert backend.shard_tasks > 0  # the fan-out really ran
    finally:
        if backend_spec != "serial":
            backend.close()

    assert all(o.status == "completed" for o in outcomes)
    # Identity: tracing + concurrency + backend never change answers.
    for i, outcome in enumerate(outcomes):
        reference = references[3 if i % 2 == 0 else 2]
        where = f"{backend_spec}/r{i}"
        assert outcome.report.result.matching == reference.result.matching, where
        assert np.array_equal(
            outcome.report.result.histograms, reference.result.histograms
        ), where
        assert outcome.report.result.stats == reference.result.stats, where

    records = tracer.records()
    finalized = [r for r in records if r.name == "request.finalized"]
    assert len(finalized) == N_REQUESTS  # exactly one per request, none lost
    assert sorted(r.attrs["name"] for r in finalized) == sorted(
        f"r{i}" for i in range(N_REQUESTS)
    )
    step_spans = [r for r in records if r.name == "engine.step"]
    assert len(step_spans) == sum(o.steps for o in outcomes)
    assert all(r.attrs["tenant"] == "d" for r in step_spans)
    # Span ids are unique even when emitted from many threads.
    span_ids = [r.span_id for r in records]
    assert len(span_ids) == len(set(span_ids))
    if backend_spec != "serial":
        windows = [r for r in records if r.name in ("backend.window", "backend.table")]
        assert windows, "fan-out windows left no spans"
        assert all(r.clock == "monotonic" for r in windows)
    if backend_spec == "sharded":
        pool_runs = [r for r in records if r.name == "pool.run"]
        assert pool_runs, "worker-pool runs left no spans"
        assert all(r.attrs["tasks"] >= 1 for r in pool_runs)
        shm_events = [r for r in records if r.name == "shm.publish"]
        assert shm_events, "shared-memory publishes left no events"
