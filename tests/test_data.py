"""Tests for the synthetic datasets, generator machinery, and workloads."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.distance import candidate_distances, l1_distance
from repro.core.target import uniform_target
from repro.data import (
    QUERY_NAMES,
    at_distance,
    build_flights,
    build_police,
    build_taxi,
    jittered,
    load_dataset,
    mixture,
    peaked,
    prepare_workload,
    sizes_from_weights,
    workload_query,
    zipf_weights,
)
from repro.data.flights import ATW, ORD
from repro.query import HistogramQuery, exact_candidate_counts

FLIGHTS_TEST_ROWS = 120_000
TAXI_TEST_ROWS = 400_000
POLICE_TEST_ROWS = 150_000


class TestGeneratorPrimitives:
    def test_zipf_weights_normalized_descending(self):
        w = zipf_weights(100, 1.1)
        assert w.sum() == pytest.approx(1.0)
        assert np.all(np.diff(w) < 0)

    def test_zipf_alpha_zero_is_uniform(self):
        np.testing.assert_allclose(zipf_weights(5, 0.0), np.full(5, 0.2))

    def test_sizes_exact_total(self):
        rng = np.random.default_rng(0)
        sizes = sizes_from_weights(zipf_weights(50, 1.0), 10_000, rng)
        assert sizes.sum() == 10_000

    def test_sizes_floor_respected_and_shape_kept(self):
        rng = np.random.default_rng(1)
        sizes = sizes_from_weights(zipf_weights(50, 1.2), 100_000, rng, min_rows=500)
        assert sizes.sum() == 100_000
        assert sizes.min() >= 500
        assert sizes[0] > 5 * sizes[-1]  # skew survives the flooring

    def test_sizes_infeasible_floor_rejected(self):
        rng = np.random.default_rng(2)
        with pytest.raises(ValueError):
            sizes_from_weights(zipf_weights(10, 1.0), 50, rng, min_rows=10)

    def test_jittered_concentration_controls_distance(self):
        rng = np.random.default_rng(3)
        base = np.full(24, 1.0 / 24)
        close = np.mean(
            [l1_distance(jittered(base, 5000.0, rng), base) for _ in range(20)]
        )
        far = np.mean([l1_distance(jittered(base, 50.0, rng), base) for _ in range(20)])
        assert close < far

    def test_peaked_and_mixture(self):
        p = peaked(4, 2, 0.6)
        assert p.sum() == pytest.approx(1.0)
        assert p[2] == p.max()
        m = mixture([p, np.full(4, 0.25)], [0.5, 0.5])
        assert m.sum() == pytest.approx(1.0)

    @given(
        st.integers(min_value=2, max_value=48),
        st.floats(min_value=0.01, max_value=0.99),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=80)
    def test_at_distance_exact_placement(self, groups, fraction, seed):
        rng = np.random.default_rng(seed)
        base = np.full(groups, 1.0 / groups)
        # Feasible range: a single peak can move at most 2(1 - 1/groups).
        distance = fraction * 2.0 * (1.0 - 1.0 / groups)
        out = at_distance(base, distance, rng)
        assert out.sum() == pytest.approx(1.0)
        assert l1_distance(out, base) == pytest.approx(distance, abs=1e-9)

    def test_at_distance_validation(self):
        rng = np.random.default_rng(0)
        base = np.full(4, 0.25)
        with pytest.raises(ValueError):
            at_distance(base, 2.0, rng)
        with pytest.raises(ValueError):
            at_distance(base, 1.9, rng, peak=0)  # headroom 0.75: max 1.5
        with pytest.raises(ValueError):
            at_distance(np.array([1.0]), 0.5, rng, peak=0)


@pytest.fixture(scope="module")
def flights():
    return build_flights(rows=FLIGHTS_TEST_ROWS, seed=7)


@pytest.fixture(scope="module")
def taxi():
    return build_taxi(rows=TAXI_TEST_ROWS, seed=7)


@pytest.fixture(scope="module")
def police():
    return build_police(rows=POLICE_TEST_ROWS, seed=7)


class TestFlights:
    def test_schema_matches_table2(self, flights):
        assert flights.table.schema.cardinality("origin") == 347
        assert flights.table.schema.cardinality("dest") == 351
        assert flights.table.schema.cardinality("dep_hour") == 24
        assert flights.table.schema.cardinality("day_of_week") == 7
        assert len(flights.table.schema.names) == 7
        assert flights.num_rows == FLIGHTS_TEST_ROWS

    def test_ord_is_largest_origin(self, flights):
        sizes = flights.table.value_counts("origin")
        assert int(np.argmax(sizes)) == ORD

    def test_q1_cluster_closest_to_ord(self, flights):
        counts = exact_candidate_counts(
            flights.table, HistogramQuery("origin", "dep_hour")
        )
        d = candidate_distances(counts, counts[ORD])
        top10 = set(np.argsort(d)[:10].tolist())
        assert top10 == set(flights.metadata["q1_cluster"])

    def test_q2_cluster_small_and_closest_to_atw(self, flights):
        counts = exact_candidate_counts(
            flights.table, HistogramQuery("origin", "dep_hour")
        )
        sizes = counts.sum(axis=1)
        d = candidate_distances(counts, counts[ATW])
        top10 = set(np.argsort(d)[:10].tolist())
        assert top10 == set(flights.metadata["q2_cluster"])
        # Rare top-k: every cluster member is far smaller than the hubs.
        assert sizes[list(top10)].max() < sizes[ORD] / 10

    def test_q3_monday_heavy_cluster(self, flights):
        counts = exact_candidate_counts(
            flights.table, HistogramQuery("origin", "day_of_week")
        )
        target = np.array([0.25] + [0.125] * 6)
        d = candidate_distances(counts, target)
        top5 = set(np.argsort(d)[:5].tolist())
        assert top5 == set(flights.metadata["q3_cluster"])

    def test_deterministic_given_seed(self):
        a = build_flights(rows=30_000, seed=3)
        b = build_flights(rows=30_000, seed=3)
        np.testing.assert_array_equal(a.table.column("origin"), b.table.column("origin"))

    def test_too_few_rows_rejected(self):
        with pytest.raises(ValueError):
            build_flights(rows=100)


class TestTaxi:
    def test_schema_matches_table2(self, taxi):
        assert taxi.table.schema.cardinality("location") == 7641
        assert taxi.table.schema.cardinality("hour_of_day") == 24
        assert taxi.table.schema.cardinality("month_of_year") == 12
        assert len(taxi.table.schema.names) == 7

    def test_ultra_rare_tail_matches_paper(self, taxi):
        """Paper: more than 3000 candidates have fewer than 10 datapoints."""
        sizes = taxi.table.value_counts("location")
        assert (sizes <= 10).sum() > 3000

    def test_flat_cluster_closest_to_uniform(self, taxi):
        counts = exact_candidate_counts(
            taxi.table, HistogramQuery("location", "hour_of_day")
        )
        sizes = counts.sum(axis=1)
        d = candidate_distances(counts, uniform_target(24))
        eligible = sizes >= 0.0008 * taxi.num_rows
        d = np.where(eligible, d, np.inf)
        top10 = set(np.argsort(d)[:10].tolist())
        assert top10 == set(taxi.metadata["q1_cluster"])

    def test_stragglers_low_selectivity(self, taxi):
        sizes = taxi.table.value_counts("location")
        sigma_rows = 0.0008 * taxi.num_rows
        for loc in taxi.metadata["q1_stragglers"]:
            assert sigma_rows <= sizes[loc] < 2.2 * sigma_rows

    def test_borderline_band_below_sigma(self, taxi):
        sizes = taxi.table.value_counts("location")
        band = sizes[500:750]
        sigma_rows = 0.0008 * taxi.num_rows
        assert np.all(band < sigma_rows)
        assert np.all(band >= 0.35 * sigma_rows)


class TestPolice:
    def test_schema_matches_table2(self, police):
        assert police.table.schema.cardinality("road") == 210
        assert police.table.schema.cardinality("violation") == 2110
        assert police.table.schema.cardinality("contraband_found") == 2
        assert police.table.schema.cardinality("officer_race") == 5
        assert len(police.table.schema.names) == 10

    def test_q1_cluster_near_even_contraband(self, police):
        counts = exact_candidate_counts(
            police.table, HistogramQuery("road", "contraband_found")
        )
        d = candidate_distances(counts, uniform_target(2))
        top10 = set(np.argsort(d)[:10].tolist())
        assert top10 == set(police.metadata["q1_cluster"])

    def test_q3_cluster_among_frequent_violations(self, police):
        counts = exact_candidate_counts(
            police.table, HistogramQuery("violation", "driver_gender")
        )
        sizes = counts.sum(axis=1)
        d = candidate_distances(counts, uniform_target(2))
        eligible = sizes >= 0.0008 * police.num_rows
        d = np.where(eligible, d, np.inf)
        top5 = set(np.argsort(d)[:5].tolist())
        assert top5 == set(police.metadata["q3_cluster"])

    def test_violation_tail_below_sigma(self, police):
        """q3 exercises stage-1 pruning: most violations are rare."""
        sizes = police.table.value_counts("violation")
        assert (sizes < 0.0008 * police.num_rows).sum() > 1500


class TestWorkloads:
    def test_all_nine_queries_defined(self):
        assert len(QUERY_NAMES) == 9
        for name in QUERY_NAMES:
            dataset_name, query = workload_query(name)
            assert dataset_name in ("flights", "taxi", "police")
            assert query.name == name

    def test_table3_cardinalities_and_k(self):
        _, q = workload_query("flights-q4")
        assert (q.candidate_attribute, q.grouping_attribute, q.k) == ("origin", "dest", 10)
        _, q = workload_query("taxi-q1")
        assert (q.candidate_attribute, q.grouping_attribute, q.k) == (
            "location", "hour_of_day", 10,
        )
        _, q = workload_query("police-q3")
        assert (q.candidate_attribute, q.grouping_attribute, q.k) == (
            "violation", "driver_gender", 5,
        )

    def test_unknown_query_rejected(self):
        with pytest.raises(ValueError):
            workload_query("flights-q9")

    def test_prepare_workload_caches(self):
        a = prepare_workload("flights-q3", rows=FLIGHTS_TEST_ROWS, seed=7)
        b = prepare_workload("flights-q3", rows=FLIGHTS_TEST_ROWS, seed=7)
        assert a is b
        assert a.exact_counts.shape == (347, 7)
        assert a.target.shape == (7,)

    def test_load_dataset_caches_and_validates(self):
        a = load_dataset("flights", rows=30_000, seed=3)
        b = load_dataset("flights", rows=30_000, seed=3)
        assert a is b
        with pytest.raises(ValueError):
            load_dataset("stocks")
