"""Tests for WAH-compressed bitmaps (paper Section 4.1's compression note)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.bitmap import BlockBitmapIndex, WahBitmap, compress_index

bit_vectors = hnp.arrays(
    dtype=bool, shape=st.integers(min_value=0, max_value=400), elements=st.booleans()
)


class TestRoundTrip:
    def test_empty(self):
        w = WahBitmap.compress(np.zeros(0, dtype=bool))
        assert w.num_bits == 0
        assert w.decompress().size == 0

    def test_all_zero_compresses_to_one_word(self):
        w = WahBitmap.compress(np.zeros(31 * 1000, dtype=bool))
        assert w.nbytes == 4
        assert not w.decompress().any()

    def test_all_one(self):
        w = WahBitmap.compress(np.ones(31 * 7, dtype=bool))
        assert w.nbytes == 4
        assert w.decompress().all()

    def test_mixed_pattern(self):
        bits = np.zeros(200, dtype=bool)
        bits[[0, 37, 38, 150, 199]] = True
        w = WahBitmap.compress(bits)
        np.testing.assert_array_equal(w.decompress(), bits)

    @given(bit_vectors)
    @settings(max_examples=150)
    def test_property_roundtrip(self, bits):
        w = WahBitmap.compress(bits)
        np.testing.assert_array_equal(w.decompress(), bits)

    @given(bit_vectors.filter(lambda b: b.size > 0))
    @settings(max_examples=80)
    def test_property_get_matches_decompress(self, bits):
        w = WahBitmap.compress(bits)
        positions = np.linspace(0, bits.size - 1, min(bits.size, 10)).astype(int)
        for p in positions:
            assert w.get(int(p)) == bits[p]


class TestAnyInRange:
    def test_matches_brute_force(self):
        rng = np.random.default_rng(5)
        bits = rng.random(500) < 0.03
        w = WahBitmap.compress(bits)
        for lo, hi in ((0, 500), (0, 1), (62, 62), (30, 95), (310, 340), (499, 500)):
            assert w.any_in_range(lo, hi) == bool(bits[lo:hi].any()), (lo, hi)

    @given(
        bit_vectors.filter(lambda b: b.size > 0),
        st.integers(min_value=0, max_value=400),
        st.integers(min_value=0, max_value=400),
    )
    @settings(max_examples=150)
    def test_property_matches_slice(self, bits, a, b):
        lo, hi = sorted((a % (bits.size + 1), b % (bits.size + 1)))
        w = WahBitmap.compress(bits)
        assert w.any_in_range(lo, hi) == bool(bits[lo:hi].any())

    def test_range_validation(self):
        w = WahBitmap.compress(np.zeros(10, dtype=bool))
        with pytest.raises(ValueError):
            w.any_in_range(0, 11)
        with pytest.raises(IndexError):
            w.get(10)


class TestCompressionBehaviour:
    def test_sparse_presence_compresses_hard(self):
        """Rare candidates touch few blocks: the paper's compression claim."""
        bits = np.zeros(100_000, dtype=bool)
        bits[np.random.default_rng(0).choice(100_000, size=40, replace=False)] = True
        w = WahBitmap.compress(bits)
        assert w.compression_ratio() > 15

    def test_dense_random_does_not_explode(self):
        """Worst case (incompressible) stays within ~32/31 of raw size."""
        rng = np.random.default_rng(1)
        bits = rng.random(31 * 300) < 0.5
        w = WahBitmap.compress(bits)
        raw_bytes = bits.size / 8
        assert w.nbytes <= raw_bytes * (32 / 31) * 1.05

    def test_compress_index_matches_uncompressed_index(self):
        rng = np.random.default_rng(2)
        column = rng.integers(0, 20, size=5000)
        idx = BlockBitmapIndex.build(column, 20, block_size=16)
        presence = idx.chunk_presence(np.arange(20), 0, idx.num_blocks)
        compressed = compress_index(presence)
        assert len(compressed) == 20
        for value in (0, 7, 19):
            np.testing.assert_array_equal(
                compressed[value].decompress(), presence[value]
            )
            # The AnyActive probe agrees between representations.
            assert compressed[value].any_in_range(0, idx.num_blocks) == bool(
                presence[value].any()
            )
