"""Tests for the multi-query serving layer (system/session.py + scheduler.py).

Acceptance properties: a MatchSession interleaving many queries must share
prepared artifacts (cache hits), report per-query latency on the shared
clock, and produce per-query results identical to standalone runs.
"""

import numpy as np
import pytest

from repro import MatchSession, match_many
from repro.core import HistSimConfig
from repro.core.target import TargetSpec
from repro.query import Equals, HistogramQuery
from repro.storage import CategoricalAttribute, ColumnTable, Schema
from repro.system import PreparedQuery, RoundRobinScheduler, SimulatedClock, run_approach


@pytest.fixture(scope="module")
def table():
    rng = np.random.default_rng(101)
    n = 100_000
    candidates, groups = 18, 6
    z = rng.integers(0, candidates, size=n)
    x = np.empty(n, dtype=np.int64)
    for c in range(candidates):
        mask = z == c
        base = np.full(groups, 1.0 / groups)
        if c >= 3:
            base[c % groups] += 0.7
            base /= base.sum()
        x[mask] = rng.choice(groups, size=int(mask.sum()), p=base)
    schema = Schema(
        (
            CategoricalAttribute("product", tuple(f"p{i}" for i in range(candidates))),
            CategoricalAttribute("age", tuple(f"a{i}" for i in range(groups))),
            CategoricalAttribute("channel", ("web", "store")),
        )
    )
    return ColumnTable(
        schema,
        {"product": z, "age": x, "channel": rng.integers(0, 2, size=n)},
    )


def make_queries(count):
    """A mix of >= count distinct queries over the fixture table."""
    queries = [
        HistogramQuery("product", "age",
                       target=TargetSpec(kind="closest_to_uniform"), k=3,
                       name="uniform"),
        HistogramQuery("product", "age",
                       target=TargetSpec(kind="candidate", candidate=4), k=2,
                       name="like-4"),
        HistogramQuery("product", "age",
                       target=TargetSpec(kind="candidate", candidate=5), k=2,
                       name="like-5"),
        HistogramQuery("product", "channel",
                       target=TargetSpec(kind="closest_to_uniform"), k=3,
                       name="channel"),
    ]
    out = []
    i = 0
    while len(out) < count:
        base = queries[i % len(queries)]
        out.append(base)
        i += 1
    return out[:count]


CONFIG_EPS = 0.15


class TestMatchSession:
    def test_eight_interleaved_queries_match_standalone(self, table):
        """>= 8 concurrent queries: cache hits, identical per-query results."""
        queries = make_queries(8)
        session = MatchSession(table)
        for query in queries:
            config = HistSimConfig(k=query.k, epsilon=CONFIG_EPS, delta=0.05, sigma=0.0)
            session.submit(query, config=config, seed=3)
        run = session.run()

        assert len(run) == 8
        assert session.cache_hits > 0

        for outcome, query in zip(run, queries):
            config = HistSimConfig(k=query.k, epsilon=CONFIG_EPS, delta=0.05, sigma=0.0)
            prepared = session.prepared(query, seed=3)
            standalone = run_approach(prepared, "fastmatch", config, seed=3)
            assert outcome.report.result.matching == standalone.result.matching
            assert np.array_equal(
                outcome.report.result.histograms, standalone.result.histograms
            )
            assert np.array_equal(
                outcome.report.result.distances, standalone.result.distances
            )
            assert outcome.report.result.stats == standalone.result.stats
            assert outcome.report.result.rounds == standalone.result.rounds
            # Service time equals the standalone simulated latency.
            assert outcome.report.elapsed_ns == pytest.approx(standalone.elapsed_ns)

    def test_artifact_layers_shared(self, table):
        session = MatchSession(table)
        for query in make_queries(4):
            session.submit(query, seed=0)
        # 4 distinct queries, one shuffle, one index (same Z), three distinct
        # ground truths (uniform + like-4 + like-5 share one template).
        assert session.cache_stats.misses["shuffle"] == 1
        assert session.cache_stats.hits["shuffle"] == 3
        assert session.cache_stats.misses["index"] == 1
        assert session.cache_stats.hits["index"] == 3
        assert session.cache_stats.misses["ground_truth"] == 2
        assert "shuffle" in session.cache_stats.summary()

    def test_repeated_identical_query_hits_prepared_cache(self, table):
        session = MatchSession(table)
        query = make_queries(1)[0]
        session.prepared(query, seed=1)
        session.prepared(query, seed=1)
        assert session.cache_stats.hits["prepared"] == 1
        # Different seed: new shuffle, but ground truth is reused.
        session.prepared(query, seed=2)
        assert session.cache_stats.misses["shuffle"] == 2
        assert session.cache_stats.hits["ground_truth"] >= 1

    def test_latency_includes_queueing_service_does_not(self, table):
        queries = make_queries(6)
        session = MatchSession(table)
        for query in queries:
            session.submit(query, seed=2)
        run = session.run()
        for outcome in run:
            assert outcome.latency_ns >= outcome.service_ns > 0
        # The drain's span covers every query's completion.
        assert run.elapsed_ns >= max(o.latency_ns for o in run)
        assert run.throughput_qps > 0
        assert run.mean_latency_seconds > 0

    def test_audits_attached_and_ok(self, table):
        session = MatchSession(table)
        run = session.match_many(make_queries(4), seed=5)
        for outcome in run:
            assert outcome.report.audit is not None
            assert outcome.report.audit.ok

    def test_scan_approach_supported(self, table):
        session = MatchSession(table)
        query = make_queries(1)[0]
        outcome = session.match(query, approach="scan")
        assert outcome.report.result.exact
        assert outcome.report.approach == "scan"
        assert outcome.steps == 1

    def test_unknown_approach_rejected(self, table):
        session = MatchSession(table)
        with pytest.raises(ValueError, match="approach"):
            session.submit(make_queries(1)[0], approach="magic")

    def test_predicate_query_row_filter_cached(self, table):
        session = MatchSession(table)
        query = HistogramQuery(
            "product", "age", target=TargetSpec(kind="closest_to_uniform"),
            k=2, predicate=Equals("channel", 0), name="web-only",
        )
        session.submit(query, seed=1)
        session.prepared(query, seed=1)
        assert session.cache_stats.misses["row_filter"] == 1
        run = session.run()
        assert run[0].report.audit.ok

    def test_max_step_rows_same_results_more_steps(self, table):
        queries = make_queries(3)
        coarse = MatchSession(table)
        for q in queries:
            coarse.submit(q, seed=4)
        coarse_run = coarse.run()

        fine = MatchSession(table)
        for q in queries:
            fine.submit(q, seed=4, max_step_rows=1000)
        fine_run = fine.run()

        for a, b in zip(coarse_run, fine_run):
            assert a.report.result.matching == b.report.result.matching
            assert np.array_equal(a.report.result.histograms, b.report.result.histograms)
            assert a.report.result.stats == b.report.result.stats
        assert fine_run.total_steps > coarse_run.total_steps

    def test_adopt_external_prepared(self, table):
        query = make_queries(1)[0]
        rng = np.random.default_rng(9)
        prepared = PreparedQuery.prepare(table, query, rng)
        session = MatchSession(table)
        session.adopt(prepared, seed=9)
        assert session.prepared(query, seed=9) is prepared

    def test_submit_rejects_mismatched_prepared(self, table):
        uniform, like4 = make_queries(2)
        prepared = PreparedQuery.prepare(table, uniform, np.random.default_rng(9))
        session = MatchSession(table)
        with pytest.raises(ValueError, match="different query"):
            session.submit(like4, prepared=prepared)


class TestMatchManyFrontDoor:
    def test_match_many_results_and_order(self, table):
        queries = make_queries(5)
        run = match_many(table, queries, epsilon=CONFIG_EPS, delta=0.05, seed=3)
        assert len(run) == 5
        names = [o.name for o in run]
        assert names[0] == "uniform" and names[3] == "channel"
        assert set(run[0].report.result.matching) == {0, 1, 2}
        # k comes from each query, shared tolerances from the call.
        assert run[1].report.result.k == 2

    def test_match_many_iterates_and_indexes(self, table):
        run = match_many(table, make_queries(2), epsilon=CONFIG_EPS, seed=1)
        assert [o.name for o in run] == [run[0].name, run[1].name]
        assert len(list(run)) == 2


class _FakeReport:
    def __init__(self):
        self.elapsed_ns = 0.0


class _FakeJob:
    """Deterministic job: charges 1ns per step, finishes after `work` steps."""

    def __init__(self, name, work, clock, log):
        self.name = name
        self._work = work
        self._clock = clock
        self._log = log

    @property
    def done(self):
        return self._work == 0

    def step(self):
        self._log.append(self.name)
        self._work -= 1
        self._clock.charge_serial(io=1.0)

    def finish(self, service_ns):
        report = _FakeReport()
        report.elapsed_ns = service_ns
        return report


class TestRoundRobinScheduler:
    def test_round_robin_interleaving_order(self):
        clock = SimulatedClock()
        scheduler = RoundRobinScheduler(clock)
        log = []
        scheduler.add(_FakeJob("a", 3, clock, log))
        scheduler.add(_FakeJob("b", 1, clock, log))
        scheduler.add(_FakeJob("c", 2, clock, log))
        result = scheduler.run()
        # Cycle 1: a b c; cycle 2: a c (b done); cycle 3: a.
        assert log == ["a", "b", "c", "a", "c", "a"]
        assert [o.name for o in result] == ["a", "b", "c"]
        assert result.total_steps == 6
        assert scheduler.pending == 0

    def test_latency_reflects_interleaving(self):
        clock = SimulatedClock()
        scheduler = RoundRobinScheduler(clock)
        log = []
        scheduler.add(_FakeJob("a", 2, clock, log))
        scheduler.add(_FakeJob("b", 2, clock, log))
        result = scheduler.run()
        a, b = result
        # b finishes last: at 4ns; a at 3ns.  Both submitted at 0.
        assert a.finished_ns == 3.0 and b.finished_ns == 4.0
        assert a.latency_ns == 3.0 and b.latency_ns == 4.0
        assert a.service_ns == 2.0 and b.service_ns == 2.0
        assert result.elapsed_ns == 4.0

    def test_empty_drain(self):
        scheduler = RoundRobinScheduler(SimulatedClock())
        result = scheduler.run()
        assert len(result) == 0
        assert result.mean_latency_seconds == 0.0
        assert result.throughput_qps == 0.0

    def test_repeated_drains_never_double_report(self):
        clock = SimulatedClock()
        scheduler = RoundRobinScheduler(clock)
        log = []
        scheduler.add(_FakeJob("a", 2, clock, log))
        first = scheduler.run()
        assert [o.name for o in first] == ["a"]
        scheduler.add(_FakeJob("b", 1, clock, log))
        second = scheduler.run()
        # Only the newly completed job is reported, with its own drain span.
        assert [o.name for o in second] == ["b"]
        assert second.elapsed_ns == 1.0
        assert scheduler.run().outcomes == ()


class _RecordingBackend:
    """SerialBackend plus a log of unpublish calls (eviction hook checks)."""

    def __init__(self):
        from repro.parallel import SerialBackend

        self._inner = SerialBackend()
        self.unpublished = []

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def unpublish(self, *artifacts):
        self.unpublished.extend(artifacts)


class TestBoundedCache:
    """Satellite: LRU eviction with backend unpublish on evict."""

    def queries(self):
        return [
            HistogramQuery("product", "age",
                           target=TargetSpec(kind="closest_to_uniform"), k=2,
                           name="q-uniform"),
            HistogramQuery("product", "age",
                           target=TargetSpec(kind="candidate", candidate=4), k=2,
                           name="q-like4"),
            HistogramQuery("product", "channel",
                           target=TargetSpec(kind="closest_to_uniform"), k=2,
                           name="q-channel"),
        ]

    def test_max_cached_queries_evicts_lru(self, table):
        from repro.parallel import ExecutionBackend

        backend = _RecordingBackend()
        assert isinstance(backend._inner, ExecutionBackend)
        session = MatchSession(table, backend=backend._inner, max_cached_queries=2)
        session.backend = backend  # route eviction hooks through the recorder
        q = self.queries()
        # Distinct seeds give each query its own shuffle, so evicting one
        # prepared entry releases a whole shuffled table.
        for seed, query in enumerate(q):
            session.prepared(query, seed=seed)
        assert session.cache_stats.evictions["prepared"] == 1
        # The first (LRU) query's exclusive artifacts were released...
        assert session.cache_stats.evictions.get("shuffle") == 1
        assert any(
            getattr(a, "num_rows", None) == table.num_rows for a in backend.unpublished
        )
        # ...so preparing it again is a miss, evicting the next-oldest.
        misses_before = session.cache_stats.misses["prepared"]
        session.prepared(q[0], seed=0)
        assert session.cache_stats.misses["prepared"] == misses_before + 1
        assert session.cache_stats.evictions["prepared"] == 2

    def test_lru_touch_on_hit_protects_entry(self, table):
        session = MatchSession(table, max_cached_queries=2)
        q = self.queries()
        session.prepared(q[0], seed=0)
        session.prepared(q[1], seed=1)
        session.prepared(q[0], seed=0)  # touch: q0 becomes most-recent
        session.prepared(q[2], seed=2)  # evicts q1, not q0
        hits_before = session.cache_stats.hits["prepared"]
        session.prepared(q[0], seed=0)
        assert session.cache_stats.hits["prepared"] == hits_before + 1

    def test_max_cached_bytes_enforced_but_newest_survives(self, table):
        session = MatchSession(table, max_cached_bytes=1)  # everything is over
        q = self.queries()
        session.prepared(q[0], seed=0)
        session.prepared(q[1], seed=1)
        # The newest entry always survives; everything older is evicted.
        assert session.cache_stats.evictions["prepared"] == 1
        assert session.cache_bytes > 1  # one entry retained despite the bound

    def test_shared_artifacts_not_released_while_referenced(self, table):
        backend = _RecordingBackend()
        session = MatchSession(table, max_cached_queries=1)
        session.backend = backend
        q = self.queries()
        # Same seed: q0 and q1 share one shuffle/index/table.
        session.prepared(q[0], seed=0)
        session.prepared(q[1], seed=0)
        assert session.cache_stats.evictions["prepared"] == 1
        # The shared shuffled table is still referenced by the survivor.
        assert session.cache_stats.evictions.get("shuffle") is None
        assert backend.unpublished == []

    def test_eviction_shows_in_summary_and_results_stay_correct(self, table):
        session = MatchSession(table, max_cached_queries=1)
        run = session.match_many(self.queries(), seed=5)
        assert "evicted=" in session.cache_stats.summary()
        for outcome in run:
            assert outcome.report.audit is not None and outcome.report.audit.ok

    def test_invalid_bounds_rejected(self, table):
        with pytest.raises(ValueError, match="max_cached_queries"):
            MatchSession(table, max_cached_queries=0)
        with pytest.raises(ValueError, match="max_cached_bytes"):
            MatchSession(table, max_cached_bytes=0)


class TestSessionLifecycle:
    """Satellite bugfix: close() idempotent under the front door's shutdown."""

    def test_double_close_and_submit_after_close(self, table):
        session = MatchSession(table)
        session.close()
        session.close()
        assert session.closed
        with pytest.raises(RuntimeError, match="closed"):
            session.submit(make_queries(1)[0])
        with pytest.raises(RuntimeError, match="closed"):
            session.make_job(make_queries(1)[0])

    def test_context_manager_then_explicit_close(self, table):
        with MatchSession(table) as session:
            session.match(make_queries(1)[0])
        session.close()  # second close via the other path
        assert session.closed


class TestPreparedQueryReuse:
    """Satellite: prepared-artifact reuse yields identical MatchResults."""

    def test_repeated_run_approach_identical(self, table):
        query = make_queries(1)[0]
        prepared = PreparedQuery.prepare(table, query, np.random.default_rng(11))
        config = HistSimConfig(k=3, epsilon=CONFIG_EPS, delta=0.05, sigma=0.0)
        first = run_approach(prepared, "fastmatch", config, seed=6)
        second = run_approach(prepared, "fastmatch", config, seed=6)
        assert first.result.matching == second.result.matching
        assert np.array_equal(first.result.histograms, second.result.histograms)
        assert np.array_equal(first.result.distances, second.result.distances)
        assert first.result.stats == second.result.stats
        assert first.result.rounds == second.result.rounds
        assert first.elapsed_ns == second.elapsed_ns

    def test_reuse_across_approaches_same_substrate(self, table):
        """One PreparedQuery serves every approach on identical artifacts."""
        query = make_queries(1)[0]
        prepared = PreparedQuery.prepare(table, query, np.random.default_rng(12))
        config = HistSimConfig(k=3, epsilon=0.2, delta=0.05, sigma=0.0)
        results = {
            approach: run_approach(prepared, approach, config, seed=2)
            for approach in ("scanmatch", "syncmatch", "fastmatch")
        }
        for report in results.values():
            assert report.audit is not None and report.audit.ok
