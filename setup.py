"""Setup shim so `pip install -e .` works offline (no wheel package available).

All metadata lives in pyproject.toml; this file only enables the legacy
editable-install code path (`pip install -e . --no-use-pep517`).
"""

from setuptools import setup

setup()
